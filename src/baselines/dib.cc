#include "baselines/dib.h"

#include "tensor/ops.h"
#include "util/math_util.h"

namespace dtrec {

Status DibTrainer::Setup(const RatingDataset& dataset) {
  const size_t a = unbiased_dim();
  if (a == 0 || a >= config_.embedding_dim) {
    return Status::InvalidArgument(
        "DIB needs 0 < unbiased_dim < embedding_dim");
  }
  const size_t rest = config_.embedding_dim - a;
  Rng init_rng(rng_.NextUint64());
  p1_ = Matrix::RandomNormal(dataset.num_users(), a, config_.init_scale,
                             &init_rng);
  p2_ = Matrix::RandomNormal(dataset.num_users(), rest, config_.init_scale,
                             &init_rng);
  q1_ = Matrix::RandomNormal(dataset.num_items(), a, config_.init_scale,
                             &init_rng);
  q2_ = Matrix::RandomNormal(dataset.num_items(), rest, config_.init_scale,
                             &init_rng);
  return Status::OK();
}

double DibTrainer::Predict(size_t user, size_t item) const {
  return Sigmoid(RowDot(p1_, user, q1_, item));
}

size_t DibTrainer::NumParameters() const {
  return p1_.size() + p2_.size() + q1_.size() + q2_.size();
}

void DibTrainer::TrainStep(const Batch& batch) {
  const size_t b = batch.size();
  double observed_count = 0.0;
  for (size_t i = 0; i < b; ++i) observed_count += batch.observed(i, 0);
  if (observed_count == 0.0) return;
  Matrix w(b, 1);
  for (size_t i = 0; i < b; ++i) {
    w(i, 0) = batch.observed(i, 0) / observed_count;
  }

  ag::Tape tape;
  ag::Var p1 = tape.Leaf(p1_), p2 = tape.Leaf(p2_);
  ag::Var q1 = tape.Leaf(q1_), q2 = tape.Leaf(q2_);
  ag::Var pu1 = ag::GatherRows(p1, batch.users);
  ag::Var pu2 = ag::GatherRows(p2, batch.users);
  ag::Var qi1 = ag::GatherRows(q1, batch.items);
  ag::Var qi2 = ag::GatherRows(q2, batch.items);

  ag::Var unbiased_logits = ag::RowwiseDot(pu1, qi1);
  ag::Var full_logits =
      ag::Add(unbiased_logits, ag::RowwiseDot(pu2, qi2));

  ag::Var e_full = SquaredErrorVsLabels(&tape, full_logits, batch.ratings);
  ag::Var e_unbiased =
      SquaredErrorVsLabels(&tape, unbiased_logits, batch.ratings);
  // Compression term: the two components must carry independent
  // information (outer-product orthogonality on the full tables),
  // normalized by table height so beta is dataset-size independent.
  ag::Var ortho = ag::Add(
      ag::Scale(ag::FrobeniusSq(ag::MatMul(ag::Transpose(p1), p2)),
                1.0 / static_cast<double>(p1_.rows())),
      ag::Scale(ag::FrobeniusSq(ag::MatMul(ag::Transpose(q1), q2)),
                1.0 / static_cast<double>(q1_.rows())));

  ag::Var loss = ag::Add(
      ag::WeightedSumElems(e_full, w),
      ag::Add(ag::Scale(ag::WeightedSumElems(e_unbiased, w), config_.alpha),
              ag::Scale(ortho, config_.beta)));
  BackwardAndStep(&tape, loss, {p1, p2, q1, q2}, {&p1_, &p2_, &q1_, &q2_});
}

}  // namespace dtrec
