#ifndef DTREC_BASELINES_REGISTRY_H_
#define DTREC_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/trainer_base.h"

namespace dtrec {

/// Canonical method names in the paper's Table IV order (baselines first,
/// proposed methods last).
std::vector<std::string> AllMethodNames();

/// The subset used by the semi-synthetic Table III.
std::vector<std::string> SemiSyntheticMethodNames();

/// Methods beyond the paper's tables (framework extensions, e.g. DT-MRDR).
std::vector<std::string> ExtensionMethodNames();

/// Instantiates a trainer by its canonical name (as printed in the paper's
/// tables, e.g. "MF", "IPS", "ESCM2-DR", "DT-IPS"). Unknown names yield
/// NotFound.
Result<std::unique_ptr<RecommenderTrainer>> MakeTrainer(
    const std::string& name, const TrainConfig& config);

}  // namespace dtrec

#endif  // DTREC_BASELINES_REGISTRY_H_
