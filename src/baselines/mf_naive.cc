#include "baselines/mf_naive.h"

namespace dtrec {

Status MfNaiveTrainer::Setup(const RatingDataset& dataset) {
  (void)dataset;
  return Status::OK();
}

void MfNaiveTrainer::TrainStep(const Batch& batch) {
  double observed_count = 0.0;
  for (size_t i = 0; i < batch.size(); ++i) {
    observed_count += batch.observed(i, 0);
  }
  if (observed_count == 0.0) return;

  // Weights realize E_Naive: average error over the observed subset.
  Matrix w(batch.size(), 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    w(i, 0) = batch.observed(i, 0) / observed_count;
  }

  ag::Tape tape;
  std::vector<ag::Var> leaves = pred_.MakeLeaves(&tape);
  ag::Var logits = pred_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var errors = SquaredErrorVsLabels(&tape, logits, batch.ratings);
  ag::Var loss = ag::WeightedSumElems(errors, w);
  BackwardAndStep(&tape, loss, leaves, pred_.Params());
}

}  // namespace dtrec
