#ifndef DTREC_BASELINES_CVIB_H_
#define DTREC_BASELINES_CVIB_H_

#include <string>

#include "baselines/trainer_base.h"

namespace dtrec {

/// CVIB (Wang et al., NeurIPS 2020): counterfactual variational
/// information bottleneck. Propensity-free debiasing that balances the
/// factual (observed) and counterfactual (unobserved) domains:
///   L = L_obs + α·H(σ̄_obs‖σ̄_unobs) + λ₂·conf
/// where σ̄_obs/σ̄_unobs are the average predictions over the observed and
/// unobserved cells of the batch, H(·‖·) is the cross entropy pushing the
/// counterfactual mean prediction toward the factual one (the contrastive
/// information term, factual side stop-gradient), and `conf` is the output
/// confidence penalty (negative entropy of predictions), discouraging
/// overconfident extrapolation. α = TrainConfig::alpha,
/// λ₂ = TrainConfig::lambda2.
class CvibTrainer : public MfJointTrainerBase {
 public:
  explicit CvibTrainer(const TrainConfig& config)
      : MfJointTrainerBase(config) {}

  std::string name() const override { return "CVIB"; }

 protected:
  Status Setup(const RatingDataset& dataset) override {
    (void)dataset;
    return Status::OK();
  }
  void TrainStep(const Batch& batch) override;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_CVIB_H_
