#include "baselines/dr_bias_mse.h"

// DrBiasTrainer / DrMseTrainer are header-defined atop DrTrainerBase; this
// TU anchors the target.
