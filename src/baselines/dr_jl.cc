#include "baselines/dr_jl.h"

// DrJlTrainer is fully defined by DrTrainerBase with joint learning and
// the default o/p̂ imputation weighting; this TU anchors the target.
