#ifndef DTREC_BASELINES_TDR_H_
#define DTREC_BASELINES_TDR_H_

#include <string>

#include "baselines/dr.h"

namespace dtrec {

/// Targeted DR (Li et al., ICLR 2023 "TDR-CL"): augments DR with a
/// batch-level targeting shift δ = Σo(e−ê)/p̂ / Σo/p̂ that re-centers the
/// imputed errors so the empirical bias of the correction term vanishes.
/// TDR keeps a pre-trained (frozen) pseudo-label model.
class TdrTrainer : public DrTrainerBase {
 public:
  explicit TdrTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/false) {}

  std::string name() const override { return "TDR"; }

 protected:
  bool UseTargeting() const override { return true; }
};

/// TDR-JL: targeting plus joint learning of the pseudo-label model, whose
/// regression target absorbs the shift δ.
class TdrJlTrainer : public DrTrainerBase {
 public:
  explicit TdrJlTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/true) {}

  std::string name() const override { return "TDR-JL"; }

 protected:
  bool UseTargeting() const override { return true; }
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_TDR_H_
