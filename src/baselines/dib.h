#ifndef DTREC_BASELINES_DIB_H_
#define DTREC_BASELINES_DIB_H_

#include <string>

#include "baselines/trainer_base.h"

namespace dtrec {

/// DIB (Liu et al., RecSys 2021): debiased information bottleneck. The
/// embedding is split into an unbiased component (dims A) and a biased
/// component (dims K−A). Training fits the observed data with the *full*
/// score (both components) while (i) also supervising the unbiased-only
/// score and (ii) penalizing dependence between the two components
/// (outer-product orthogonality, the compression term of the bottleneck).
/// At test time only the unbiased component is used:
///   L = L_obs(full) + α·L_obs(unbiased) + β·(‖P₁ᵀP₂‖_F² + ‖Q₁ᵀQ₂‖_F²)
/// α = TrainConfig::alpha, β = TrainConfig::beta,
/// A = TrainConfig::disentangle_dim (0 → K/2).
class DibTrainer : public MfJointTrainerBase {
 public:
  explicit DibTrainer(const TrainConfig& config)
      : MfJointTrainerBase(config) {}

  std::string name() const override { return "DIB"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.disentangle_loss = true;
    return inv;
  }

  /// Prediction uses the unbiased component only.
  double Predict(size_t user, size_t item) const override;
  size_t NumParameters() const override;

 protected:
  Status Setup(const RatingDataset& dataset) override;
  void TrainStep(const Batch& batch) override;
  std::vector<CheckpointGroup> CheckpointGroups() override {
    auto groups = MfJointTrainerBase::CheckpointGroups();
    groups[0].params.push_back(&p1_);
    groups[0].params.push_back(&p2_);
    groups[0].params.push_back(&q1_);
    groups[0].params.push_back(&q2_);
    return groups;
  }

 private:
  size_t unbiased_dim() const {
    return config_.disentangle_dim > 0 ? config_.disentangle_dim
                                       : config_.embedding_dim / 2;
  }

  // Unbiased (1) and biased (2) embedding blocks.
  Matrix p1_, p2_, q1_, q2_;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_DIB_H_
