#ifndef DTREC_BASELINES_MR_H_
#define DTREC_BASELINES_MR_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/trainer_base.h"
#include "propensity/logistic_propensity.h"
#include "propensity/popularity_propensity.h"

namespace dtrec {

/// Multiple-robust learning (Li et al., AAAI 2023), structured form.
///
/// MR maintains a *set* of candidate propensity models {constant,
/// popularity, logistic} and candidate imputations {global mean error,
/// MF pseudo-labels} and learns simplex mixture weights over both, so the
/// estimator stays unbiased whenever any candidate (or a linear
/// combination) is accurate. We realize the mixture with learnable softmax
/// logits trained end-to-end through the DR-style loss; the pseudo-label
/// model trains alternately, as in DR-JL. This keeps MR's defining
/// relaxation — correctness of one candidate suffices — in a form that
/// trains with the same SGD stack as every other method (see DESIGN.md).
class MrTrainer : public MfJointTrainerBase {
 public:
  explicit MrTrainer(const TrainConfig& config)
      : MfJointTrainerBase(config) {}

  std::string name() const override { return "MR"; }

  size_t NumParameters() const override;
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;  // candidate propensities are trained
    return inv;
  }

  /// Current mixture over propensity candidates (softmax of logits).
  std::vector<double> PropensityMixture() const;

 protected:
  Status Setup(const RatingDataset& dataset) override;
  void TrainStep(const Batch& batch) override;
  std::vector<CheckpointGroup> CheckpointGroups() override {
    // Mixture logits ride in group 0 (stepped by opt_ alongside pred_);
    // the alternating pseudo-label model keeps its own optimizer.
    auto groups = MfJointTrainerBase::CheckpointGroups();
    groups[0].params.push_back(&prop_logits_);
    groups[0].params.push_back(&imp_logits_);
    groups.push_back(CheckpointGroup{imp_.Params(), imp_opt_.get()});
    return groups;
  }
  void OnLearningRate(double lr) override {
    MfJointTrainerBase::OnLearningRate(lr);
    if (imp_opt_ != nullptr) imp_opt_->set_learning_rate(lr);
  }

 private:
  void ImputationStep(const Batch& batch, const Matrix& inv_p);

  std::vector<std::unique_ptr<PropensityModel>> propensity_candidates_;
  MfModel imp_;
  std::unique_ptr<Optimizer> imp_opt_;
  Matrix prop_logits_;  // 1×J mixture logits
  Matrix imp_logits_;   // 1×2 mixture logits (mean vs MF pseudo-labels)
  double mean_label_ = 0.0;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_MR_H_
