#include "baselines/snips.h"

#include "propensity/propensity.h"
#include "util/numeric_guard.h"

namespace dtrec {

void SnipsTrainer::TrainStep(const Batch& batch) {
  // Self-normalization: weights o_i/p̂_i scaled by Σ_j o_j/p̂_j rather
  // than the batch size.
  double weight_sum = 0.0;
  Matrix w(batch.size(), 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch.observed(i, 0) == 0.0) continue;
    const double p = ClipPropensity(BatchPropensity(batch, i),
                                    config_.propensity_clip);
    DTREC_ASSERT_PROPENSITY(p);
    w(i, 0) = 1.0 / p;
    weight_sum += w(i, 0);
  }
  if (weight_sum == 0.0) return;
  for (size_t i = 0; i < batch.size(); ++i) w(i, 0) /= weight_sum;
  DTREC_ASSERT_FINITE(w, "SnipsTrainer self-normalized weights");

  ag::Tape tape;
  std::vector<ag::Var> leaves = pred_.MakeLeaves(&tape);
  ag::Var logits = pred_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var errors = SquaredErrorVsLabels(&tape, logits, batch.ratings);
  ag::Var loss = ag::WeightedSumElems(errors, w);
  BackwardAndStep(&tape, loss, leaves, pred_.Params());
}

}  // namespace dtrec
