#include "baselines/tower_base.h"

#include "tensor/ops.h"
#include "util/math_util.h"

namespace dtrec {

Status TowerTrainerBase::Setup(const RatingDataset& dataset) {
  // Tower input: [p_u, q_i, p_u ∘ q_i]. The element-wise product channel
  // gives the towers the dot-product inductive bias (NeuMF-style), which
  // the pure concatenation lacks — without it the MLP heads memorize the
  // sparse observed cells instead of generalizing.
  const size_t feat_dim = 3 * config_.embedding_dim;
  Rng tower_rng(rng_.NextUint64());
  ctr_tower_ = MlpHead(feat_dim, config_.mlp_hidden, config_.init_scale,
                       &tower_rng);
  cvr_tower_ = MlpHead(feat_dim, config_.mlp_hidden, config_.init_scale,
                       &tower_rng);
  if (has_imputation_) {
    imp_tower_ = MlpHead(feat_dim, config_.mlp_hidden, config_.init_scale,
                         &tower_rng);
  }
  return TowerSetup(dataset);
}

double TowerTrainerBase::Predict(size_t user, size_t item) const {
  const Matrix pu = pred_.p().RowCopy(user);
  const Matrix qi = pred_.q().RowCopy(item);
  const Matrix feat = HConcat(HConcat(pu, qi), Hadamard(pu, qi));
  return Sigmoid(cvr_tower_.Forward(feat));
}

size_t TowerTrainerBase::NumParameters() const {
  size_t n = pred_.p().size() + pred_.q().size() +
             ctr_tower_.NumParameters() + cvr_tower_.NumParameters();
  if (has_imputation_) n += imp_tower_.NumParameters();
  return n;
}

ParamBudget TowerTrainerBase::Budget() const {
  ParamBudget budget;
  budget.embedding_params = pred_.p().size() + pred_.q().size();
  budget.hidden_params =
      ctr_tower_.NumParameters() + cvr_tower_.NumParameters();
  if (has_imputation_) budget.hidden_params += imp_tower_.NumParameters();
  return budget;
}

TowerTrainerBase::TowerGraph TowerTrainerBase::BuildGraph(
    ag::Tape* tape, const Batch& batch) const {
  TowerGraph graph;
  graph.emb_leaves = {tape->Leaf(pred_.p()), tape->Leaf(pred_.q())};
  ag::Var pu = ag::GatherRows(graph.emb_leaves[0], batch.users);
  ag::Var qi = ag::GatherRows(graph.emb_leaves[1], batch.items);
  graph.features = ag::HConcat(ag::HConcat(pu, qi), ag::Mul(pu, qi));
  graph.ctr_leaves = ctr_tower_.MakeLeaves(tape);
  graph.cvr_leaves = cvr_tower_.MakeLeaves(tape);
  graph.ctr_logits = ctr_tower_.Forward(graph.ctr_leaves, graph.features);
  graph.cvr_logits = cvr_tower_.Forward(graph.cvr_leaves, graph.features);
  if (has_imputation_) {
    graph.imp_leaves = imp_tower_.MakeLeaves(tape);
    graph.imp_logits = imp_tower_.Forward(graph.imp_leaves, graph.features);
  }
  return graph;
}

void TowerTrainerBase::StepAll(ag::Tape* tape, ag::Var loss,
                               TowerGraph* graph) {
  std::vector<ag::Var> leaves = graph->emb_leaves;
  std::vector<Matrix*> params{&pred_.p(), &pred_.q()};
  auto append = [&](const std::vector<ag::Var>& tower_leaves,
                    std::vector<Matrix*> tower_params) {
    for (size_t i = 0; i < tower_leaves.size(); ++i) {
      leaves.push_back(tower_leaves[i]);
      params.push_back(tower_params[i]);
    }
  };
  append(graph->ctr_leaves, ctr_tower_.Params());
  append(graph->cvr_leaves, cvr_tower_.Params());
  if (has_imputation_) append(graph->imp_leaves, imp_tower_.Params());
  BackwardAndStep(tape, loss, leaves, params);
}

ag::Var TowerTrainerBase::SafeProb(ag::Var prob) {
  constexpr double kEps = 1e-6;
  return ag::AddScalar(ag::Scale(prob, 1.0 - 2.0 * kEps), kEps);
}

ag::Var TowerTrainerBase::BceMean(ag::Tape* tape, ag::Var prob,
                                  const Matrix& labels) {
  ag::Var p = SafeProb(prob);
  ag::Var ones = tape->Constant(Matrix::Ones(labels.rows(), labels.cols()));
  ag::Var pos = ag::MulConst(ag::Log(p), labels);
  Matrix neg_labels(labels.rows(), labels.cols());
  for (size_t i = 0; i < labels.size(); ++i) {
    neg_labels.at_flat(i) = 1.0 - labels.at_flat(i);
  }
  ag::Var neg = ag::MulConst(ag::Log(ag::Sub(ones, p)), neg_labels);
  return ag::Scale(ag::Mean(ag::Add(pos, neg)), -1.0);
}

}  // namespace dtrec
