#ifndef DTREC_BASELINES_MULTI_IPS_DR_H_
#define DTREC_BASELINES_MULTI_IPS_DR_H_

#include <string>

#include "baselines/tower_base.h"

namespace dtrec {

/// Multi-IPS (Zhang et al., WWW 2020): multi-task learning on the vanilla
/// IPS estimator. One shared embedding pair feeds a propensity (ctr) tower
/// trained with cross entropy on o over the entire space and a prediction
/// (cvr) tower trained with the IPS loss whose weights come from the ctr
/// tower (stop-gradient).
class MultiIpsTrainer : public TowerTrainerBase {
 public:
  explicit MultiIpsTrainer(const TrainConfig& config)
      : TowerTrainerBase(config, /*has_imputation=*/false) {}

  std::string name() const override { return "Multi-IPS"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;
    return inv;
  }

 protected:
  void TrainStep(const Batch& batch) override;
};

/// Multi-DR (Zhang et al., WWW 2020): Multi-IPS plus an imputation tower;
/// the prediction tower trains on the DR loss.
class MultiDrTrainer : public TowerTrainerBase {
 public:
  explicit MultiDrTrainer(const TrainConfig& config)
      : TowerTrainerBase(config, /*has_imputation=*/true) {}

  std::string name() const override { return "Multi-DR"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;
    return inv;
  }

 protected:
  void TrainStep(const Batch& batch) override;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_MULTI_IPS_DR_H_
