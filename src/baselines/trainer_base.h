#ifndef DTREC_BASELINES_TRAINER_BASE_H_
#define DTREC_BASELINES_TRAINER_BASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "core/train_checkpoint.h"
#include "data/rating_dataset.h"
#include "data/samplers.h"
#include "models/mf_model.h"
#include "models/param_count.h"
#include "optim/optimizer.h"
#include "propensity/propensity.h"
#include "util/random.h"
#include "util/status.h"

namespace dtrec {

/// Hyper-parameters shared by every trainer. Method-specific knobs are
/// grouped at the bottom; a method reads only the ones it documents.
struct TrainConfig {
  size_t epochs = 20;
  size_t batch_size = 2048;
  size_t steps_per_epoch = 0;  ///< 0 → ceil(|D|/batch), capped below
  size_t max_steps_per_epoch = 120;
  double learning_rate = 0.05;
  double lr_decay = 0.0;  ///< inverse-time decay rate per epoch (0 = off)
  double weight_decay = 1e-5;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  size_t embedding_dim = 8;
  bool use_bias = false;  ///< user/item bias terms in MF heads
  double init_scale = 0.1;
  double propensity_clip = 0.05;  ///< lower clip for inverse weights
  bool mf_propensity = false;  ///< IPS/DR: MF propensity instead of the
                               ///< logistic identity model (paper Table II)
  uint64_t seed = 123;

  // -- multi-task / method-specific weights ---------------------------
  double alpha = 1.0;    ///< propensity-loss weight (DT, ESCM², Multi-*)
  double beta = 1e-4;    ///< disentangling-loss weight (DT, DIB)
  double gamma = 1e-5;   ///< regularization-loss weight (DT)
  size_t disentangle_dim = 0;  ///< A in the paper; 0 → dim/2
  double lambda1 = 0.5;  ///< ESCM² counterfactual-risk weight
  double lambda2 = 0.5;  ///< ESCM² CTCVR weight / CVIB confidence weight
  size_t mlp_hidden = 16;  ///< tower width for shared-embedding methods
  bool dt_mlp_propensity = true;  ///< DT: MLP propensity head (paper Table
                                  ///< II charges DT-IPS 1× hidden); false
                                  ///< falls back to the per-dim GLM head
};

/// Checkpointing / resume controls for Fit. Default-constructed options
/// mean "train from scratch, never touch disk" — the historical behavior.
struct FitOptions {
  /// Directory for the training checkpoint (`<dir>/train_state.ckpt`,
  /// written crash-atomically). Empty disables checkpointing.
  std::string checkpoint_dir;
  /// Save after every N completed epochs (and always after the last).
  size_t checkpoint_every = 1;
  /// Restore from an existing checkpoint in `checkpoint_dir` and continue
  /// at the epoch it recorded. A missing checkpoint file is a cold start,
  /// not an error, so retry wrappers can pass resume=true unconditionally.
  bool resume = false;
  /// Path of a JSONL training event stream: one "dtrec-train-events-v1"
  /// record per completed epoch (loss components, grad norm, propensity
  /// clip rate, wall time, RNG cursor — see obs/event_log.h). Empty
  /// disables the stream. A fresh run truncates the file; a resumed run
  /// appends, so earlier epochs' records survive the restart.
  std::string events_path;
};

/// Interface every debiasing method implements. Training reads only
/// dataset.train() (the biased observations); the unbiased test slice is
/// reserved for evaluation.
class RecommenderTrainer {
 public:
  explicit RecommenderTrainer(const TrainConfig& config) : config_(config) {}
  virtual ~RecommenderTrainer() = default;

  RecommenderTrainer(const RecommenderTrainer&) = delete;
  RecommenderTrainer& operator=(const RecommenderTrainer&) = delete;

  virtual std::string name() const = 0;
  virtual Status Fit(const RatingDataset& dataset) = 0;

  /// Checkpoint-aware variant. The default rejects any request that needs
  /// disk state (so a method without resume support cannot silently ignore
  /// it) and otherwise behaves exactly like Fit(dataset). Every trainer
  /// derived from MfJointTrainerBase — i.e. every method in the registry —
  /// supports the full option set.
  virtual Status Fit(const RatingDataset& dataset, const FitOptions& options) {
    if (!options.checkpoint_dir.empty()) {
      return Status::NotSupported(name() +
                                  " does not support training checkpoints");
    }
    return Fit(dataset);
  }

  /// Predicted probability that (user, item) is a positive interaction.
  virtual double Predict(size_t user, size_t item) const = 0;

  virtual size_t NumParameters() const = 0;

  /// Itemized budget for Table II / Table VI; default attributes all
  /// parameters to embeddings.
  virtual ParamBudget Budget() const;

  /// Which auxiliary losses the method trains (Table II inventory).
  virtual LossInventory Losses() const { return {}; }

  /// Predictions aligned with `triples`.
  std::vector<double> PredictMany(
      const std::vector<RatingTriple>& triples) const;

  /// Dense prediction matrix (semi-synthetic pointwise evaluation).
  Matrix PredictFullMatrix(size_t num_users, size_t num_items) const;

  const TrainConfig& config() const { return config_; }

 protected:
  TrainConfig config_;
};

/// Scaffolding shared by all MF-based joint trainers: owns the prediction
/// MF model and the optimizer, and drives the epoch/step loop over uniform
/// full-matrix batches (the stochastic form of the paper's 1/|D| Σ_D
/// losses). Subclasses implement Setup() and TrainStep().
class MfJointTrainerBase : public RecommenderTrainer {
 public:
  explicit MfJointTrainerBase(const TrainConfig& config)
      : RecommenderTrainer(config), rng_(config.seed) {}

  Status Fit(const RatingDataset& dataset) final {
    return Fit(dataset, FitOptions());
  }

  /// Runs the epoch/step loop with optional periodic checkpointing and
  /// resume (see core/train_checkpoint.h for the protocol). Failpoint
  /// sites: "train/epoch_begin" before each epoch's steps,
  /// "train/epoch_end" after its checkpoint save.
  Status Fit(const RatingDataset& dataset, const FitOptions& options) final;

  double Predict(size_t user, size_t item) const override {
    return pred_.PredictProbability(user, item);
  }

  size_t NumParameters() const override { return pred_.NumParameters(); }

 protected:
  /// Builds method-specific state (extra models, pre-fit propensities).
  /// The prediction model and optimizer already exist.
  virtual Status Setup(const RatingDataset& dataset) = 0;

  /// One SGD step on a uniform full-matrix batch.
  virtual void TrainStep(const Batch& batch) = 0;

  /// Optional per-epoch hook (e.g. decayed schedules, recalibration).
  virtual void EpochEnd(size_t epoch) { (void)epoch; }

  /// Called when the per-epoch learning rate changes (inverse-time decay,
  /// TrainConfig::lr_decay); subclasses owning extra optimizers forward it.
  virtual void OnLearningRate(double lr) { opt_->set_learning_rate(lr); }

  /// Everything the epoch loop mutates, grouped with the optimizer that
  /// steps it — the contents of a training checkpoint. The base covers the
  /// prediction model and main optimizer; subclasses owning extra trained
  /// state (disentangled embeddings, towers, imputation models and their
  /// optimizers) append to group 0 or add groups, keeping a stable order.
  /// Called only after Setup(), so subclass state exists.
  virtual std::vector<CheckpointGroup> CheckpointGroups() {
    return {CheckpointGroup{pred_.Params(), opt_.get()}};
  }

  /// Runs backward from `loss` and applies one optimizer step for each
  /// (leaf, parameter) pair. When the event stream is on, also records
  /// the scalar loss value as the "total" component and accumulates the
  /// global gradient L2 norm for the epoch's event record.
  void BackwardAndStep(ag::Tape* tape, ag::Var loss,
                       const std::vector<ag::Var>& leaves,
                       const std::vector<Matrix*>& params);

  /// Accumulates one per-step observation of a named loss component; the
  /// epoch's event record reports the per-step mean. No-op unless Fit was
  /// given FitOptions::events_path (check collect_epoch_stats_ before
  /// doing non-trivial work to compute `value`).
  void RecordEpochLoss(const char* name, double value);

  /// True while Fit is emitting the per-epoch event stream.
  bool collect_epoch_stats_ = false;

  /// Per-cell inverse-propensity weights o_i / clip(p̂_i) / B, the batch
  /// estimate of the IPS loss weights. `propensity(i)` returns p̂ for
  /// batch index i.
  Matrix IpsWeights(const Batch& batch,
                    const std::function<double(size_t)>& propensity) const;

  MfModelConfig PredModelConfig(const RatingDataset& dataset,
                                uint64_t seed) const;

  MfModel pred_;
  std::unique_ptr<Optimizer> opt_;
  Rng rng_;

 private:
  // Per-epoch telemetry accumulators (cleared at each epoch start).
  std::map<std::string, std::pair<double, uint64_t>> epoch_losses_;
  double grad_norm_sum_ = 0.0;
  uint64_t grad_norm_steps_ = 0;
};

/// Squared-error Var e = (r − σ(logits))² against constant labels.
ag::Var SquaredErrorVsLabels(ag::Tape* tape, ag::Var logits,
                             const Matrix& labels);

}  // namespace dtrec

#endif  // DTREC_BASELINES_TRAINER_BASE_H_
