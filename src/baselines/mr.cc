#include "baselines/mr.h"

#include <cmath>

#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {
namespace {

/// Softmax of a 1×J logits Var, via exp / Σexp.
ag::Var Softmax(ag::Tape* tape, ag::Var logits) {
  (void)tape;
  ag::Var exps = ag::Exp(logits);
  return ag::DivScalar(exps, ag::Sum(exps));
}

}  // namespace

Status MrTrainer::Setup(const RatingDataset& dataset) {
  propensity_candidates_.clear();
  propensity_candidates_.push_back(std::make_unique<ConstantPropensity>());
  propensity_candidates_.push_back(
      std::make_unique<PopularityPropensity>());
  LogisticPropensityConfig pc;
  pc.seed = rng_.NextUint64();
  propensity_candidates_.push_back(
      std::make_unique<LogisticPropensity>(pc));
  for (auto& candidate : propensity_candidates_) {
    DTREC_RETURN_IF_ERROR(candidate->Fit(dataset));
  }

  imp_ = MfModel(PredModelConfig(dataset, rng_.NextUint64()));
  imp_opt_ = MakeOptimizer(config_.optimizer, config_.learning_rate,
                           config_.weight_decay);
  prop_logits_ = Matrix(1, propensity_candidates_.size());
  imp_logits_ = Matrix(1, 2);

  double total = 0.0;
  for (const auto& t : dataset.train()) total += t.rating;
  mean_label_ = total / static_cast<double>(dataset.train().size());
  return Status::OK();
}

size_t MrTrainer::NumParameters() const {
  return pred_.NumParameters() + imp_.NumParameters() +
         prop_logits_.size() + imp_logits_.size();
}

std::vector<double> MrTrainer::PropensityMixture() const {
  std::vector<double> mix(prop_logits_.size());
  double denom = 0.0;
  for (size_t j = 0; j < mix.size(); ++j) {
    mix[j] = std::exp(prop_logits_(0, j));
    denom += mix[j];
  }
  for (double& v : mix) v /= denom;
  return mix;
}

void MrTrainer::TrainStep(const Batch& batch) {
  const size_t b = batch.size();
  const size_t j_count = propensity_candidates_.size();
  const double inv_b = 1.0 / static_cast<double>(b);

  // Candidate inverse propensities (constants of the step).
  Matrix inv_p_candidates(b, j_count);
  for (size_t i = 0; i < b; ++i) {
    for (size_t j = 0; j < j_count; ++j) {
      const double p = ClipPropensity(
          propensity_candidates_[j]->Propensity(batch.users[i],
                                                batch.items[i]),
          config_.propensity_clip);
      DTREC_ASSERT_PROPENSITY(p);
      inv_p_candidates(i, j) = 1.0 / p;
    }
  }
  DTREC_ASSERT_FINITE(inv_p_candidates, "MrTrainer inverse propensities");
  // Candidate pseudo-labels.
  Matrix mf_pseudo(b, 1);
  for (size_t i = 0; i < b; ++i) {
    mf_pseudo(i, 0) = imp_.PredictProbability(batch.users[i],
                                              batch.items[i]);
  }

  ag::Tape tape;
  std::vector<ag::Var> leaves = pred_.MakeLeaves(&tape);
  ag::Var w_prop = tape.Leaf(prop_logits_);
  ag::Var w_imp = tape.Leaf(imp_logits_);

  ag::Var logits = pred_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var probs = ag::Sigmoid(logits);

  // Mixture inverse propensity: (B×J)·(J×1 softmax) -> B×1.
  ag::Var prop_mix = Softmax(&tape, w_prop);
  ag::Var inv_p =
      ag::MatMul(tape.Constant(inv_p_candidates), ag::Transpose(prop_mix));

  // Mixture pseudo-label: u₀·mean + u₁·MF.
  ag::Var imp_mix = Softmax(&tape, w_imp);  // 1×2
  Matrix candidates(b, 2);
  for (size_t i = 0; i < b; ++i) {
    candidates(i, 0) = mean_label_;
    candidates(i, 1) = mf_pseudo(i, 0);
  }
  ag::Var pseudo =
      ag::MatMul(tape.Constant(candidates), ag::Transpose(imp_mix));

  ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), probs));
  ag::Var e_hat = ag::Square(ag::Sub(pseudo, probs));

  // DR-style loss with the mixtures: mean[ ê + o·(e−ê)·inv_p ].
  Matrix o_scaled(b, 1);
  for (size_t i = 0; i < b; ++i) {
    o_scaled(i, 0) = batch.observed(i, 0) * inv_b;
  }
  ag::Var correction =
      ag::Sum(ag::MulConst(ag::Mul(ag::Sub(e, e_hat), inv_p), o_scaled));
  ag::Var loss = ag::Add(ag::Mean(e_hat), correction);

  std::vector<Matrix*> params = pred_.Params();
  std::vector<ag::Var> all_leaves = leaves;
  all_leaves.push_back(w_prop);
  params.push_back(&prop_logits_);
  all_leaves.push_back(w_imp);
  params.push_back(&imp_logits_);
  BackwardAndStep(&tape, loss, all_leaves, params);

  // Alternate pseudo-label update with the mixture inverse propensity.
  ImputationStep(batch, inv_p.value());
}

void MrTrainer::ImputationStep(const Batch& batch, const Matrix& inv_p) {
  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);
  Matrix pred_probs(b, 1);
  Matrix target_e(b, 1);
  Matrix w(b, 1);
  double total = 0.0;
  for (size_t i = 0; i < b; ++i) {
    const double prob =
        pred_.PredictProbability(batch.users[i], batch.items[i]);
    pred_probs(i, 0) = prob;
    const double diff = batch.ratings(i, 0) - prob;
    target_e(i, 0) = diff * diff;
    w(i, 0) = batch.observed(i, 0) * inv_p(i, 0) * inv_b;
    total += w(i, 0);
  }
  if (total == 0.0) return;

  ag::Tape tape;
  std::vector<ag::Var> leaves = imp_.MakeLeaves(&tape);
  ag::Var logits = imp_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var pseudo = ag::Sigmoid(logits);
  ag::Var e_hat = ag::Square(ag::Sub(pseudo, tape.Constant(pred_probs)));
  ag::Var loss = ag::WeightedSumElems(
      ag::Square(ag::Sub(tape.Constant(target_e), e_hat)), w);
  tape.Backward(loss);
  for (size_t i = 0; i < leaves.size(); ++i) {
    imp_opt_->Step(imp_.Params()[i], tape.GradOf(leaves[i]));
  }
}

}  // namespace dtrec
