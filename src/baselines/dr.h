#ifndef DTREC_BASELINES_DR_H_
#define DTREC_BASELINES_DR_H_

#include <string>

#include "baselines/ips.h"

namespace dtrec {

/// Shared machinery of the doubly-robust family (paper Eq. 4).
///
/// The imputation model is an MF producing pseudo-labels r̃; the imputed
/// error is ê = (σ(pred) − r̃)², so prediction-model gradients flow through
/// both the observed error e and ê (Wang et al. 2019 joint learning).
/// Subclasses choose the imputation-loss weighting, targeting, and
/// self-normalization, which is all that distinguishes DR-JL, MRDR-JL,
/// DR-BIAS, DR-MSE, TDR(-JL), and StableDR.
class DrTrainerBase : public IpsTrainer {
 public:
  DrTrainerBase(const TrainConfig& config, bool joint_learning);

  size_t NumParameters() const override;
  ParamBudget Budget() const override;

 protected:
  Status Setup(const RatingDataset& dataset) override;
  void TrainStep(const Batch& batch) final;
  std::vector<CheckpointGroup> CheckpointGroups() override;

  /// Weight of the squared imputation residual for a cell with observation
  /// indicator `o` and clipped propensity `p`. DR-JL default: o/p.
  virtual double ImputationWeight(double o, double p) const { return o / p; }

  /// TDR-style targeting: shifts ê by the batch bias-zeroing constant δ.
  virtual bool UseTargeting() const { return false; }

  /// StableDR-style self-normalization of the correction term.
  virtual bool SelfNormalized() const { return false; }

  void OnLearningRate(double lr) override {
    IpsTrainer::OnLearningRate(lr);
    if (imp_opt_ != nullptr) imp_opt_->set_learning_rate(lr);
  }

  void PredictionStep(const Batch& batch);
  void ImputationStep(const Batch& batch);

  /// Pseudo-label r̃ for one cell from the imputation model.
  double PseudoLabel(size_t user, size_t item) const;

  MfModel imp_;
  std::unique_ptr<Optimizer> imp_opt_;
  bool joint_learning_;
  double last_delta_ = 0.0;  ///< most recent targeting shift (tests)
};

/// Vanilla DR: the imputation model is pre-trained on the observed ratings
/// and then frozen; only the prediction model trains on the DR loss.
class DrTrainer : public DrTrainerBase {
 public:
  explicit DrTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/false) {}

  std::string name() const override { return "DR"; }
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_DR_H_
