#ifndef DTREC_BASELINES_MF_NAIVE_H_
#define DTREC_BASELINES_MF_NAIVE_H_

#include <string>

#include "baselines/trainer_base.h"

namespace dtrec {

/// The naive estimator E_Naive (paper Eq. 2): plain matrix factorization
/// minimizing the average squared error over *observed* cells only.
/// Unbiased under MCAR, biased under MAR/MNAR — the reference floor of
/// every comparison table.
class MfNaiveTrainer : public MfJointTrainerBase {
 public:
  explicit MfNaiveTrainer(const TrainConfig& config)
      : MfJointTrainerBase(config) {}

  std::string name() const override { return "MF"; }

 protected:
  Status Setup(const RatingDataset& dataset) override;
  void TrainStep(const Batch& batch) override;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_MF_NAIVE_H_
