#ifndef DTREC_BASELINES_SNIPS_H_
#define DTREC_BASELINES_SNIPS_H_

#include <string>

#include "baselines/ips.h"

namespace dtrec {

/// Self-normalized IPS (Swaminathan & Joachims): divides the weighted sum
/// of errors by the sum of inverse weights instead of |D|, trading a small
/// bias for a large variance reduction. Inherits IPS's propensity stack.
class SnipsTrainer : public IpsTrainer {
 public:
  explicit SnipsTrainer(const TrainConfig& config) : IpsTrainer(config) {}

  std::string name() const override { return "SNIPS"; }

 protected:
  void TrainStep(const Batch& batch) override;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_SNIPS_H_
