#include "baselines/cvib.h"

#include "util/math_util.h"

namespace dtrec {

void CvibTrainer::TrainStep(const Batch& batch) {
  const size_t b = batch.size();
  double observed_count = 0.0;
  for (size_t i = 0; i < b; ++i) observed_count += batch.observed(i, 0);
  const double unobserved_count = static_cast<double>(b) - observed_count;
  if (observed_count == 0.0 || unobserved_count == 0.0) return;

  // Averaging weights for the factual / counterfactual groups.
  Matrix w_obs(b, 1), w_unobs(b, 1), w_loss(b, 1), w_conf(b, 1);
  for (size_t i = 0; i < b; ++i) {
    const double o = batch.observed(i, 0);
    w_obs(i, 0) = o / observed_count;
    w_unobs(i, 0) = (1.0 - o) / unobserved_count;
    w_loss(i, 0) = o / observed_count;
    w_conf(i, 0) = 1.0 / static_cast<double>(b);
  }

  ag::Tape tape;
  std::vector<ag::Var> leaves = pred_.MakeLeaves(&tape);
  ag::Var logits = pred_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var probs = ag::Sigmoid(logits);
  constexpr double kEps = 1e-6;
  ag::Var safe = ag::AddScalar(ag::Scale(probs, 1.0 - 2.0 * kEps), kEps);

  // Factual loss: squared error on the observed cells.
  ag::Var e =
      ag::Square(ag::Sub(tape.Constant(batch.ratings), safe));
  ag::Var factual = ag::WeightedSumElems(e, w_loss);

  // Contrastive balancing: cross entropy of the counterfactual mean
  // prediction against the (stop-gradient) factual mean prediction.
  ag::Var mean_obs = ag::Detach(ag::WeightedSumElems(safe, w_obs));  // 1×1
  ag::Var mean_unobs = ag::WeightedSumElems(safe, w_unobs);          // 1×1
  const double q = Clamp(mean_obs.value()(0, 0), kEps, 1.0 - kEps);
  ag::Var one = tape.Constant(Matrix::Ones(1, 1));
  ag::Var align = ag::Scale(
      ag::Add(ag::Scale(ag::Log(mean_unobs), q),
              ag::Scale(ag::Log(ag::Sub(one, mean_unobs)), 1.0 - q)),
      -1.0);

  // Confidence penalty: negative entropy of every prediction.
  ag::Var ones_b = tape.Constant(Matrix::Ones(b, 1));
  ag::Var neg_entropy =
      ag::Add(ag::Mul(safe, ag::Log(safe)),
              ag::Mul(ag::Sub(ones_b, safe),
                      ag::Log(ag::Sub(ones_b, safe))));
  ag::Var conf = ag::WeightedSumElems(neg_entropy, w_conf);

  ag::Var loss = ag::Add(
      factual,
      ag::Add(ag::Scale(align, config_.alpha),
              ag::Scale(conf, config_.lambda2)));
  BackwardAndStep(&tape, loss, leaves, pred_.Params());
}

}  // namespace dtrec
