#include "baselines/stable_dr.h"

// StableDrTrainer is header-defined atop DrTrainerBase; this TU anchors
// the target.
