#ifndef DTREC_BASELINES_ESCM2_H_
#define DTREC_BASELINES_ESCM2_H_

#include <string>

#include "baselines/tower_base.h"

namespace dtrec {

/// ESCM²-IPS (Wang et al., SIGIR 2022): ESMM augmented with a
/// counterfactual risk minimizer — the IPS-weighted CVR loss (propensity
/// from the ctr tower, stop-gradient) — as a regularizer:
///   L = L_ctr + λ₁·L_cvr^IPS + λ₂·L_ctcvr.
class Escm2IpsTrainer : public TowerTrainerBase {
 public:
  explicit Escm2IpsTrainer(const TrainConfig& config)
      : TowerTrainerBase(config, /*has_imputation=*/false) {}

  std::string name() const override { return "ESCM2-IPS"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;
    inv.ctcvr_loss = true;
    return inv;
  }

 protected:
  void TrainStep(const Batch& batch) override;
};

/// ESCM²-DR: the counterfactual regularizer is the DR loss, with an
/// imputation tower trained on the weighted residual.
class Escm2DrTrainer : public TowerTrainerBase {
 public:
  explicit Escm2DrTrainer(const TrainConfig& config)
      : TowerTrainerBase(config, /*has_imputation=*/true) {}

  std::string name() const override { return "ESCM2-DR"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;
    inv.ctcvr_loss = true;
    return inv;
  }

 protected:
  void TrainStep(const Batch& batch) override;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_ESCM2_H_
