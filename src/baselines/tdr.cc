#include "baselines/tdr.h"

// TdrTrainer / TdrJlTrainer are header-defined atop DrTrainerBase; this TU
// anchors the target.
