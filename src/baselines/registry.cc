#include "baselines/registry.h"

#include "baselines/cvib.h"
#include "baselines/dib.h"
#include "baselines/dr.h"
#include "baselines/dr_bias_mse.h"
#include "baselines/dr_jl.h"
#include "baselines/esmm.h"
#include "baselines/escm2.h"
#include "baselines/ips.h"
#include "baselines/ips_v2.h"
#include "baselines/mf_naive.h"
#include "baselines/mr.h"
#include "baselines/mrdr_jl.h"
#include "baselines/multi_ips_dr.h"
#include "baselines/snips.h"
#include "baselines/stable_dr.h"
#include "baselines/tdr.h"
#include "core/dt_dr.h"
#include "core/dt_ips.h"

namespace dtrec {

std::vector<std::string> AllMethodNames() {
  return {"MF",        "CVIB",      "DIB",       "IPS",       "SNIPS",
          "DR",        "DR-JL",     "MRDR-JL",   "DR-BIAS",   "DR-MSE",
          "MR",        "TDR",       "TDR-JL",    "Stable-DR", "Multi-IPS",
          "Multi-DR",  "ESMM",      "ESCM2-IPS", "ESCM2-DR",  "IPS-V2",
          "DR-V2",     "DT-IPS",    "DT-DR"};
}

std::vector<std::string> ExtensionMethodNames() { return {"DT-MRDR"}; }

std::vector<std::string> SemiSyntheticMethodNames() {
  // Table III's nine rows.
  return {"MF",        "IPS",       "DR",       "Multi-IPS", "Multi-DR",
          "ESCM2-IPS", "ESCM2-DR",  "DT-IPS",   "DT-DR"};
}

Result<std::unique_ptr<RecommenderTrainer>> MakeTrainer(
    const std::string& name, const TrainConfig& config) {
  std::unique_ptr<RecommenderTrainer> trainer;
  if (name == "MF") {
    trainer = std::make_unique<MfNaiveTrainer>(config);
  } else if (name == "CVIB") {
    trainer = std::make_unique<CvibTrainer>(config);
  } else if (name == "DIB") {
    trainer = std::make_unique<DibTrainer>(config);
  } else if (name == "IPS") {
    trainer = std::make_unique<IpsTrainer>(config);
  } else if (name == "SNIPS") {
    trainer = std::make_unique<SnipsTrainer>(config);
  } else if (name == "DR") {
    trainer = std::make_unique<DrTrainer>(config);
  } else if (name == "DR-JL") {
    trainer = std::make_unique<DrJlTrainer>(config);
  } else if (name == "MRDR-JL") {
    trainer = std::make_unique<MrdrJlTrainer>(config);
  } else if (name == "DR-BIAS") {
    trainer = std::make_unique<DrBiasTrainer>(config);
  } else if (name == "DR-MSE") {
    trainer = std::make_unique<DrMseTrainer>(config);
  } else if (name == "MR") {
    trainer = std::make_unique<MrTrainer>(config);
  } else if (name == "TDR") {
    trainer = std::make_unique<TdrTrainer>(config);
  } else if (name == "TDR-JL") {
    trainer = std::make_unique<TdrJlTrainer>(config);
  } else if (name == "Stable-DR") {
    trainer = std::make_unique<StableDrTrainer>(config);
  } else if (name == "Multi-IPS") {
    trainer = std::make_unique<MultiIpsTrainer>(config);
  } else if (name == "Multi-DR") {
    trainer = std::make_unique<MultiDrTrainer>(config);
  } else if (name == "ESMM") {
    trainer = std::make_unique<EsmmTrainer>(config);
  } else if (name == "ESCM2-IPS") {
    trainer = std::make_unique<Escm2IpsTrainer>(config);
  } else if (name == "ESCM2-DR") {
    trainer = std::make_unique<Escm2DrTrainer>(config);
  } else if (name == "IPS-V2") {
    trainer = std::make_unique<IpsV2Trainer>(config);
  } else if (name == "DR-V2") {
    trainer = std::make_unique<DrV2Trainer>(config);
  } else if (name == "DT-IPS") {
    trainer = std::make_unique<DtIpsTrainer>(config);
  } else if (name == "DT-DR") {
    trainer = std::make_unique<DtDrTrainer>(config);
  } else if (name == "DT-MRDR") {
    trainer = std::make_unique<DtMrdrTrainer>(config);
  } else {
    return Status::NotFound("unknown method name: " + name);
  }
  return trainer;
}

}  // namespace dtrec
