#ifndef DTREC_BASELINES_DR_BIAS_MSE_H_
#define DTREC_BASELINES_DR_BIAS_MSE_H_

#include <string>

#include "baselines/dr.h"

namespace dtrec {

/// DR-BIAS (Dai et al., KDD 2022): imputation weighting o·(1−p̂)²/p̂³
/// that directly targets the squared-bias term of the generalized DR
/// learning framework.
class DrBiasTrainer : public DrTrainerBase {
 public:
  explicit DrBiasTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/true) {}

  std::string name() const override { return "DR-BIAS"; }

 protected:
  double ImputationWeight(double o, double p) const override {
    const double q = 1.0 - p;
    return o * q * q / (p * p * p);
  }
};

/// DR-MSE (Dai et al., KDD 2022): convex combination of the bias-targeting
/// (DR-BIAS) and variance-targeting (MRDR) weights, trading the two off
/// with λ = TrainConfig::lambda1.
class DrMseTrainer : public DrTrainerBase {
 public:
  explicit DrMseTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/true) {}

  std::string name() const override { return "DR-MSE"; }

 protected:
  double ImputationWeight(double o, double p) const override {
    const double q = 1.0 - p;
    const double bias_w = o * q * q / (p * p * p);
    const double var_w = o * q / (p * p);
    return config_.lambda1 * bias_w + (1.0 - config_.lambda1) * var_w;
  }
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_DR_BIAS_MSE_H_
