#include "baselines/escm2.h"

#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {
namespace {

Matrix JointLabel(const Batch& batch) {
  Matrix joint(batch.size(), 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    joint(i, 0) = batch.observed(i, 0) * batch.ratings(i, 0);
  }
  return joint;
}

}  // namespace

void Escm2IpsTrainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  TowerGraph graph = BuildGraph(&tape, batch);
  ag::Var ctr_prob = ag::Sigmoid(graph.ctr_logits);
  ag::Var cvr_prob = ag::Sigmoid(graph.cvr_logits);
  ag::Var ctcvr_prob = ag::Mul(ctr_prob, cvr_prob);

  const Matrix& p_hat = ctr_prob.value();
  const Matrix w = IpsWeights(batch, [&](size_t i) { return p_hat(i, 0); });
  ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), cvr_prob));
  ag::Var cvr_ips = ag::WeightedSumElems(e, w);

  ag::Var loss = ag::Add(
      BceMean(&tape, ctr_prob, batch.observed),
      ag::Add(ag::Scale(cvr_ips, config_.lambda1),
              ag::Scale(BceMean(&tape, ctcvr_prob, JointLabel(batch)),
                        config_.lambda2)));
  StepAll(&tape, loss, &graph);
}

void Escm2DrTrainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  TowerGraph graph = BuildGraph(&tape, batch);
  ag::Var ctr_prob = ag::Sigmoid(graph.ctr_logits);
  ag::Var cvr_prob = ag::Sigmoid(graph.cvr_logits);
  ag::Var imp_prob = ag::Sigmoid(graph.imp_logits);
  ag::Var ctcvr_prob = ag::Mul(ctr_prob, cvr_prob);

  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);
  const Matrix& p_hat = ctr_prob.value();
  Matrix w_imputed(b, 1), w_observed(b, 1);
  for (size_t i = 0; i < b; ++i) {
    const double p = ClipPropensity(p_hat(i, 0), config_.propensity_clip);
    DTREC_ASSERT_PROPENSITY(p);
    const double o_over_p = batch.observed(i, 0) / p;
    w_imputed(i, 0) = (1.0 - o_over_p) * inv_b;
    w_observed(i, 0) = o_over_p * inv_b;
  }
  DTREC_ASSERT_FINITE(w_observed, "Escm2DrTrainer weights");

  ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), cvr_prob));
  ag::Var e_hat_pred = ag::Square(ag::Sub(ag::Detach(imp_prob), cvr_prob));
  ag::Var cvr_dr = ag::Add(ag::WeightedSumElems(e_hat_pred, w_imputed),
                           ag::WeightedSumElems(e, w_observed));
  // Imputation tower residual (prediction tower detached).
  ag::Var e_hat_imp = ag::Square(ag::Sub(imp_prob, ag::Detach(cvr_prob)));
  ag::Var imp_loss = ag::WeightedSumElems(
      ag::Square(ag::Sub(ag::Detach(e), e_hat_imp)), w_observed);

  ag::Var loss = ag::Add(
      BceMean(&tape, ctr_prob, batch.observed),
      ag::Add(ag::Scale(ag::Add(cvr_dr, imp_loss), config_.lambda1),
              ag::Scale(BceMean(&tape, ctcvr_prob, JointLabel(batch)),
                        config_.lambda2)));
  StepAll(&tape, loss, &graph);
}

}  // namespace dtrec
