#include "baselines/ips.h"

namespace dtrec {

Status IpsTrainer::Setup(const RatingDataset& dataset) {
  if (propensity_fn_) return Status::OK();
  if (config_.mf_propensity) {
    // The paper's Table II assumes a full MF propensity for IPS/DR (their
    // 2x/3x embedding rows); enable via TrainConfig::mf_propensity.
    MfPropensityConfig pc;
    pc.dim = config_.embedding_dim;
    pc.seed = rng_.NextUint64();
    auto model = std::make_unique<MfPropensity>(pc);
    DTREC_RETURN_IF_ERROR(model->Fit(dataset));
    learned_propensity_params_ = model->NumParameters();
    learned_propensity_ = std::move(model);
    return Status::OK();
  }
  LogisticPropensityConfig pc;
  pc.seed = rng_.NextUint64();
  auto model = std::make_unique<LogisticPropensity>(pc);
  DTREC_RETURN_IF_ERROR(model->Fit(dataset));
  learned_propensity_params_ = model->user_logits().size() +
                               model->item_logits().size() + 1;
  learned_propensity_ = std::move(model);
  return Status::OK();
}

size_t IpsTrainer::NumParameters() const {
  return pred_.NumParameters() + learned_propensity_params_;
}

double IpsTrainer::BatchPropensity(const Batch& batch, size_t i) const {
  if (propensity_fn_) {
    return propensity_fn_(batch.users[i], batch.items[i],
                          batch.ratings(i, 0));
  }
  return learned_propensity_->Propensity(batch.users[i], batch.items[i]);
}

void IpsTrainer::TrainStep(const Batch& batch) {
  const Matrix w =
      IpsWeights(batch, [&](size_t i) { return BatchPropensity(batch, i); });

  ag::Tape tape;
  std::vector<ag::Var> leaves = pred_.MakeLeaves(&tape);
  ag::Var logits = pred_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var errors = SquaredErrorVsLabels(&tape, logits, batch.ratings);
  ag::Var loss = ag::WeightedSumElems(errors, w);
  BackwardAndStep(&tape, loss, leaves, pred_.Params());
}

}  // namespace dtrec
