#ifndef DTREC_BASELINES_ESMM_H_
#define DTREC_BASELINES_ESMM_H_

#include <string>

#include "baselines/tower_base.h"

namespace dtrec {

/// ESMM (Ma et al., SIGIR 2018): entire-space multi-task model. Trains the
/// observation (ctr) tower on o over the whole matrix and the product
/// σ(ctr)·σ(cvr) on the joint label o·r (ctcvr); the cvr tower — used for
/// prediction — receives no direct supervision and is learned entirely
/// through the entire-space decomposition.
class EsmmTrainer : public TowerTrainerBase {
 public:
  explicit EsmmTrainer(const TrainConfig& config)
      : TowerTrainerBase(config, /*has_imputation=*/false) {}

  std::string name() const override { return "ESMM"; }
  LossInventory Losses() const override {
    LossInventory inv;
    inv.propensity_loss = true;
    inv.ctcvr_loss = true;
    return inv;
  }

 protected:
  void TrainStep(const Batch& batch) override;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_ESMM_H_
