#ifndef DTREC_BASELINES_MRDR_JL_H_
#define DTREC_BASELINES_MRDR_JL_H_

#include <string>

#include "baselines/dr.h"

namespace dtrec {

/// More-robust DR joint learning (Guo et al., SIGIR 2021): keeps the DR
/// prediction loss but retrains the imputation with the variance-targeting
/// weight o·(1−p̂)/p̂², which minimizes the variance of the DR estimator
/// while preserving double robustness.
class MrdrJlTrainer : public DrTrainerBase {
 public:
  explicit MrdrJlTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/true) {}

  std::string name() const override { return "MRDR-JL"; }

 protected:
  double ImputationWeight(double o, double p) const override {
    return o * (1.0 - p) / (p * p);
  }
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_MRDR_JL_H_
