#include "baselines/dr.h"

#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

DrTrainerBase::DrTrainerBase(const TrainConfig& config, bool joint_learning)
    : IpsTrainer(config), joint_learning_(joint_learning) {}

size_t DrTrainerBase::NumParameters() const {
  return IpsTrainer::NumParameters() + imp_.NumParameters();
}

ParamBudget DrTrainerBase::Budget() const {
  ParamBudget budget;
  budget.embedding_params = pred_.NumParameters() + imp_.NumParameters();
  budget.other_params = IpsTrainer::NumParameters() - pred_.NumParameters();
  return budget;
}

Status DrTrainerBase::Setup(const RatingDataset& dataset) {
  DTREC_RETURN_IF_ERROR(IpsTrainer::Setup(dataset));
  MfModelConfig mc = PredModelConfig(dataset, rng_.NextUint64());
  imp_ = MfModel(mc);
  imp_opt_ = MakeOptimizer(config_.optimizer, config_.learning_rate,
                           config_.weight_decay);

  if (!joint_learning_) {
    // Vanilla DR: pre-train the pseudo-label model on observed ratings
    // (a naive fit — its extrapolation error is exactly what the DR
    // correction term is supposed to absorb).
    ObservedBatchSampler sampler(dataset, config_.batch_size,
                                 rng_.NextUint64());
    const size_t pretrain_epochs = std::max<size_t>(1, config_.epochs / 2);
    for (size_t epoch = 0; epoch < pretrain_epochs; ++epoch) {
      sampler.NewEpoch();
      Batch batch;
      while (sampler.NextBatch(&batch)) {
        Matrix w(batch.size(), 1,
                 1.0 / static_cast<double>(batch.size()));
        ag::Tape tape;
        std::vector<ag::Var> leaves = imp_.MakeLeaves(&tape);
        ag::Var logits =
            imp_.BatchLogits(&tape, leaves, batch.users, batch.items);
        ag::Var errors = SquaredErrorVsLabels(&tape, logits, batch.ratings);
        ag::Var loss = ag::WeightedSumElems(errors, w);
        tape.Backward(loss);
        for (size_t i = 0; i < leaves.size(); ++i) {
          imp_opt_->Step(imp_.Params()[i], tape.GradOf(leaves[i]));
        }
      }
    }
  }
  return Status::OK();
}

double DrTrainerBase::PseudoLabel(size_t user, size_t item) const {
  return imp_.PredictProbability(user, item);
}

std::vector<CheckpointGroup> DrTrainerBase::CheckpointGroups() {
  // Vanilla DR's frozen pre-fit imputation model replays deterministically
  // in Setup, but the joint-learning variants keep stepping it — snapshot
  // it (and its optimizer moments) unconditionally; for the frozen case
  // the restored values simply equal the recomputed ones.
  auto groups = IpsTrainer::CheckpointGroups();
  groups.push_back(CheckpointGroup{imp_.Params(), imp_opt_.get()});
  return groups;
}

void DrTrainerBase::TrainStep(const Batch& batch) {
  PredictionStep(batch);
  if (joint_learning_) ImputationStep(batch);
}

void DrTrainerBase::PredictionStep(const Batch& batch) {
  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);

  // Constants of this step: clipped propensities and pseudo-labels.
  Matrix pseudo(b, 1);
  Matrix w_imputed(b, 1);   // coefficient of ê: (1 − o/p̂)/B
  Matrix w_observed(b, 1);  // coefficient of e:  (o/p̂)/B
  Matrix w_sn(b, 1);        // StableDR: o/p̂ normalized to sum 1
  double inv_weight_sum = 0.0;
  for (size_t i = 0; i < b; ++i) {
    pseudo(i, 0) = PseudoLabel(batch.users[i], batch.items[i]);
    const double p = ClipPropensity(BatchPropensity(batch, i),
                                    config_.propensity_clip);
    DTREC_ASSERT_PROPENSITY(p);
    const double o_over_p = batch.observed(i, 0) / p;
    w_imputed(i, 0) = (1.0 - o_over_p) * inv_b;
    w_observed(i, 0) = o_over_p * inv_b;
    w_sn(i, 0) = o_over_p;
    inv_weight_sum += o_over_p;
  }
  DTREC_ASSERT_FINITE(w_observed, "DrTrainerBase::PredictionStep weights");

  ag::Tape tape;
  std::vector<ag::Var> leaves = pred_.MakeLeaves(&tape);
  ag::Var logits = pred_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var probs = ag::Sigmoid(logits);
  ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), probs));
  ag::Var e_hat = ag::Square(ag::Sub(tape.Constant(pseudo), probs));

  ag::Var loss;
  if (SelfNormalized()) {
    // StableDR: (1/B)Σ ê + Σ o(e−ê)/p̂ / Σ o/p̂.
    if (inv_weight_sum > 0.0) {
      for (size_t i = 0; i < b; ++i) w_sn(i, 0) /= inv_weight_sum;
    }
    loss = ag::Add(ag::Mean(e_hat),
                   ag::WeightedSumElems(ag::Sub(e, e_hat), w_sn));
  } else {
    // ê + o(e−ê)/p̂ = ê·(1 − o/p̂) + e·(o/p̂).
    loss = ag::Add(ag::WeightedSumElems(e_hat, w_imputed),
                   ag::WeightedSumElems(e, w_observed));
  }

  if (UseTargeting()) {
    // δ zeroes the empirical bias of the correction term over this batch;
    // it is treated as stop-gradient and consumed by the imputation step.
    double num = 0.0;
    const Matrix& e_val = e.value();
    const Matrix& ehat_val = e_hat.value();
    for (size_t i = 0; i < b; ++i) {
      num += w_sn(i, 0) * (e_val(i, 0) - ehat_val(i, 0));
    }
    last_delta_ = inv_weight_sum > 0.0 && !SelfNormalized()
                      ? num / inv_weight_sum
                      : (SelfNormalized() ? num : 0.0);
  }

  BackwardAndStep(&tape, loss, leaves, pred_.Params());
}

void DrTrainerBase::ImputationStep(const Batch& batch) {
  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);

  // Constants: the prediction model's current probabilities and errors.
  Matrix pred_probs(b, 1);
  Matrix target_e(b, 1);
  Matrix w(b, 1);
  double total_weight = 0.0;
  for (size_t i = 0; i < b; ++i) {
    const double prob = pred_.PredictProbability(batch.users[i],
                                                 batch.items[i]);
    pred_probs(i, 0) = prob;
    const double diff = batch.ratings(i, 0) - prob;
    target_e(i, 0) = diff * diff - (UseTargeting() ? last_delta_ : 0.0);
    const double p = ClipPropensity(BatchPropensity(batch, i),
                                    config_.propensity_clip);
    DTREC_ASSERT_PROPENSITY(p);
    w(i, 0) = ImputationWeight(batch.observed(i, 0), p) * inv_b;
    total_weight += w(i, 0);
  }
  DTREC_ASSERT_FINITE(w, "DrTrainerBase::ImputationStep weights");
  if (total_weight == 0.0) return;

  ag::Tape tape;
  std::vector<ag::Var> leaves = imp_.MakeLeaves(&tape);
  ag::Var logits = imp_.BatchLogits(&tape, leaves, batch.users, batch.items);
  ag::Var pseudo = ag::Sigmoid(logits);
  // ê = (r̃ − σ(pred))², gradients through r̃ only.
  ag::Var e_hat = ag::Square(ag::Sub(pseudo, tape.Constant(pred_probs)));
  ag::Var resid = ag::Sub(tape.Constant(target_e), e_hat);
  ag::Var loss = ag::WeightedSumElems(ag::Square(resid), w);
  tape.Backward(loss);
  for (size_t i = 0; i < leaves.size(); ++i) {
    imp_opt_->Step(imp_.Params()[i], tape.GradOf(leaves[i]));
  }
}

}  // namespace dtrec
