#ifndef DTREC_BASELINES_IPS_H_
#define DTREC_BASELINES_IPS_H_

#include <functional>
#include <memory>
#include <string>

#include "baselines/trainer_base.h"
#include "propensity/logistic_propensity.h"
#include "propensity/mf_propensity.h"

namespace dtrec {

/// Inverse-propensity-scoring estimator (paper Eq. 3, Schnabel et al.
/// 2016): reweights observed errors by 1/p̂. By default the propensity is
/// the learned MAR propensity σ(a_u + b_i + c) — exactly the estimator the
/// paper proves biased under MNAR (Lemma 2a). An override hook lets the
/// oracle experiments inject the true MAR/MNAR propensities instead
/// (Lemma 2b / Table I).
class IpsTrainer : public MfJointTrainerBase {
 public:
  /// (user, item, observed rating) → propensity. The rating argument lets
  /// oracle callers supply the MNAR propensity P(o=1 | x, r).
  using PropensityFn = std::function<double(size_t, size_t, double)>;

  explicit IpsTrainer(const TrainConfig& config)
      : MfJointTrainerBase(config) {}

  std::string name() const override { return "IPS"; }

  /// Replaces the learned propensity with an external one (oracle tests).
  void set_propensity_fn(PropensityFn fn) { propensity_fn_ = std::move(fn); }

  /// Prediction MF plus the learned logistic propensity's (|U|+|I|+1)
  /// parameters, so Tables II/VI account for the full method.
  size_t NumParameters() const override;

 protected:
  Status Setup(const RatingDataset& dataset) override;
  void TrainStep(const Batch& batch) override;

  /// Propensity for batch index `i` (uses override when set).
  double BatchPropensity(const Batch& batch, size_t i) const;

  PropensityFn propensity_fn_;
  std::unique_ptr<PropensityModel> learned_propensity_;
  size_t learned_propensity_params_ = 0;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_IPS_H_
