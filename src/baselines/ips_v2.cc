#include "baselines/ips_v2.h"

#include "tensor/ops.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

ag::Var IpsV2Trainer::SoftClip(ag::Var prob) const {
  const double c = config_.propensity_clip;
  return ag::AddScalar(ag::Scale(prob, 1.0 - c), c);
}

ag::Var IpsV2Trainer::BalanceTerm(ag::Tape* tape, const Batch& batch,
                                  ag::Var prob, ag::Var features) const {
  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);
  // o_i / B as constants; division by the live clipped propensity keeps
  // the gradient path into the propensity tower.
  Matrix o_scaled(b, 1);
  for (size_t i = 0; i < b; ++i) {
    o_scaled(i, 0) = batch.observed(i, 0) * inv_b;
  }
  ag::Var weights =
      ag::Div(tape->Constant(o_scaled), SoftClip(prob));  // B×1

  // Features are stop-gradient: balancing shapes the propensity, not the
  // representation.
  ag::Var phi = tape->Constant(features.value());
  ag::Var weighted_mean = ag::MatMul(ag::Transpose(weights), phi);  // 1×F
  Matrix mean_row = ColSums(features.value());
  ScaleInPlace(&mean_row, inv_b);
  ag::Var diff = ag::Sub(weighted_mean, tape->Constant(mean_row));
  return ag::FrobeniusSq(diff);
}

void IpsV2Trainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  TowerGraph graph = BuildGraph(&tape, batch);
  ag::Var ctr_prob = ag::Sigmoid(graph.ctr_logits);
  ag::Var cvr_prob = ag::Sigmoid(graph.cvr_logits);

  const Matrix& p_hat = ctr_prob.value();
  const Matrix w = IpsWeights(batch, [&](size_t i) { return p_hat(i, 0); });
  ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), cvr_prob));
  ag::Var ips_loss = ag::WeightedSumElems(e, w);

  ag::Var loss = ag::Add(
      ips_loss,
      ag::Add(ag::Scale(BceMean(&tape, ctr_prob, batch.observed),
                        config_.alpha),
              ag::Scale(BalanceTerm(&tape, batch, ctr_prob, graph.features),
                        config_.lambda2)));
  StepAll(&tape, loss, &graph);
}

void DrV2Trainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  TowerGraph graph = BuildGraph(&tape, batch);
  ag::Var ctr_prob = ag::Sigmoid(graph.ctr_logits);
  ag::Var cvr_prob = ag::Sigmoid(graph.cvr_logits);
  ag::Var imp_prob = ag::Sigmoid(graph.imp_logits);

  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);
  const Matrix& p_hat = ctr_prob.value();
  Matrix w_imputed(b, 1), w_observed(b, 1);
  for (size_t i = 0; i < b; ++i) {
    const double p = ClipPropensity(p_hat(i, 0), config_.propensity_clip);
    DTREC_ASSERT_PROPENSITY(p);
    const double o_over_p = batch.observed(i, 0) / p;
    w_imputed(i, 0) = (1.0 - o_over_p) * inv_b;
    w_observed(i, 0) = o_over_p * inv_b;
  }
  DTREC_ASSERT_FINITE(w_observed, "DrV2Trainer weights");

  ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), cvr_prob));
  ag::Var e_hat_pred = ag::Square(ag::Sub(ag::Detach(imp_prob), cvr_prob));
  ag::Var dr_loss = ag::Add(ag::WeightedSumElems(e_hat_pred, w_imputed),
                            ag::WeightedSumElems(e, w_observed));
  ag::Var e_hat_imp = ag::Square(ag::Sub(imp_prob, ag::Detach(cvr_prob)));
  ag::Var imp_loss = ag::WeightedSumElems(
      ag::Square(ag::Sub(ag::Detach(e), e_hat_imp)), w_observed);

  ag::Var loss = ag::Add(
      ag::Add(dr_loss, imp_loss),
      ag::Add(ag::Scale(BceMean(&tape, ctr_prob, batch.observed),
                        config_.alpha),
              ag::Scale(BalanceTerm(&tape, batch, ctr_prob, graph.features),
                        config_.lambda2)));
  StepAll(&tape, loss, &graph);
}

}  // namespace dtrec
