#include "baselines/multi_ips_dr.h"

#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

void MultiIpsTrainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  TowerGraph graph = BuildGraph(&tape, batch);
  ag::Var ctr_prob = ag::Sigmoid(graph.ctr_logits);

  // IPS weights from the ctr tower's current propensities (stop-grad).
  const Matrix& p_hat = ctr_prob.value();
  const Matrix w = IpsWeights(
      batch, [&](size_t i) { return p_hat(i, 0); });

  ag::Var cvr_prob = ag::Sigmoid(graph.cvr_logits);
  ag::Var e =
      ag::Square(ag::Sub(tape.Constant(batch.ratings), cvr_prob));
  ag::Var ips_loss = ag::WeightedSumElems(e, w);
  ag::Var prop_loss = BceMean(&tape, ctr_prob, batch.observed);
  ag::Var loss = ag::Add(ips_loss, ag::Scale(prop_loss, config_.alpha));
  StepAll(&tape, loss, &graph);
}

void MultiDrTrainer::TrainStep(const Batch& batch) {
  ag::Tape tape;
  TowerGraph graph = BuildGraph(&tape, batch);
  ag::Var ctr_prob = ag::Sigmoid(graph.ctr_logits);
  ag::Var cvr_prob = ag::Sigmoid(graph.cvr_logits);
  ag::Var imp_prob = ag::Sigmoid(graph.imp_logits);

  const size_t b = batch.size();
  const double inv_b = 1.0 / static_cast<double>(b);
  const Matrix& p_hat = ctr_prob.value();
  Matrix w_imputed(b, 1);
  Matrix w_observed(b, 1);
  Matrix w_resid(b, 1);
  for (size_t i = 0; i < b; ++i) {
    const double p = ClipPropensity(p_hat(i, 0), config_.propensity_clip);
    DTREC_ASSERT_PROPENSITY(p);
    const double o_over_p = batch.observed(i, 0) / p;
    w_imputed(i, 0) = (1.0 - o_over_p) * inv_b;
    w_observed(i, 0) = o_over_p * inv_b;
    w_resid(i, 0) = o_over_p * inv_b;
  }
  DTREC_ASSERT_FINITE(w_observed, "MultiDrTrainer weights");

  ag::Var e = ag::Square(ag::Sub(tape.Constant(batch.ratings), cvr_prob));
  // ê for the prediction tower: pseudo-label tower detached.
  ag::Var e_hat_pred =
      ag::Square(ag::Sub(ag::Detach(imp_prob), cvr_prob));
  ag::Var dr_loss = ag::Add(ag::WeightedSumElems(e_hat_pred, w_imputed),
                            ag::WeightedSumElems(e, w_observed));

  // Imputation tower regression: prediction tower detached.
  ag::Var e_hat_imp = ag::Square(ag::Sub(imp_prob, ag::Detach(cvr_prob)));
  ag::Var imp_loss = ag::WeightedSumElems(
      ag::Square(ag::Sub(ag::Detach(e), e_hat_imp)), w_resid);

  ag::Var prop_loss = BceMean(&tape, ctr_prob, batch.observed);
  ag::Var loss = ag::Add(ag::Add(dr_loss, imp_loss),
                         ag::Scale(prop_loss, config_.alpha));
  StepAll(&tape, loss, &graph);
}

}  // namespace dtrec
