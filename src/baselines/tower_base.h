#ifndef DTREC_BASELINES_TOWER_BASE_H_
#define DTREC_BASELINES_TOWER_BASE_H_

#include <string>
#include <vector>

#include "baselines/trainer_base.h"
#include "models/mlp.h"

namespace dtrec {

/// Scaffolding for the shared-embedding multi-task methods (Multi-IPS/DR,
/// ESMM, ESCM²-IPS/DR, IPS-V2, DR-V2).
///
/// These methods share ONE user/item embedding pair (the base MfModel's
/// tables, whose dot product is unused) feeding shallow MLP towers:
///  - ctr tower:   observation propensity P(o=1 | u,i)
///  - cvr tower:   the rating/conversion prediction (evaluation target)
///  - imp tower:   error imputation (DR flavors only)
/// matching the paper's Section VI-D note that parameter-sharing baselines
/// need a shallow MLP head on top of MF embeddings.
class TowerTrainerBase : public MfJointTrainerBase {
 public:
  explicit TowerTrainerBase(const TrainConfig& config, bool has_imputation)
      : MfJointTrainerBase(config), has_imputation_(has_imputation) {}

  /// Prediction comes from the cvr tower, not the MF dot product.
  double Predict(size_t user, size_t item) const override;

  size_t NumParameters() const override;
  ParamBudget Budget() const override;

 protected:
  Status Setup(const RatingDataset& dataset) override;

  std::vector<CheckpointGroup> CheckpointGroups() override {
    // All towers are stepped by opt_ together with the shared embeddings,
    // so everything lives in group 0.
    auto groups = MfJointTrainerBase::CheckpointGroups();
    for (Matrix* param : ctr_tower_.Params()) groups[0].params.push_back(param);
    for (Matrix* param : cvr_tower_.Params()) groups[0].params.push_back(param);
    if (has_imputation_) {
      for (Matrix* param : imp_tower_.Params()) {
        groups[0].params.push_back(param);
      }
    }
    return groups;
  }

  /// Hook for subclasses needing extra setup after the towers exist.
  virtual Status TowerSetup(const RatingDataset& dataset) {
    return Status::OK();
  }

  /// Per-step graph pieces available to subclasses.
  struct TowerGraph {
    std::vector<ag::Var> emb_leaves;   // P, Q
    std::vector<ag::Var> ctr_leaves;   // ctr tower params
    std::vector<ag::Var> cvr_leaves;   // cvr tower params
    std::vector<ag::Var> imp_leaves;   // imp tower params (may be empty)
    ag::Var features;                  // B×2K concat embeddings
    ag::Var ctr_logits;                // B×1
    ag::Var cvr_logits;                // B×1
    ag::Var imp_logits;                // B×1 (valid iff has_imputation)
  };

  /// Builds embeddings + towers on `tape` for `batch`.
  TowerGraph BuildGraph(ag::Tape* tape, const Batch& batch) const;

  /// All (leaf, param) pairs of `graph`, for the optimizer step.
  void StepAll(ag::Tape* tape, ag::Var loss, TowerGraph* graph);

  /// Probability clamped into (eps, 1−eps) for log-safety.
  static ag::Var SafeProb(ag::Var prob);

  /// Mean binary cross entropy of probability Var vs constant labels.
  static ag::Var BceMean(ag::Tape* tape, ag::Var prob, const Matrix& labels);

  MlpHead ctr_tower_;
  MlpHead cvr_tower_;
  MlpHead imp_tower_;
  bool has_imputation_;
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_TOWER_BASE_H_
