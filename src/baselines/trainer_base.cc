#include "baselines/trainer_base.h"

#include <algorithm>
#include <cmath>

#include "obs/event_log.h"
#include "obs/prop_stats.h"
#include "obs/trace.h"
#include "optim/lr_schedule.h"
#include "util/failpoint.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"
#include "util/stopwatch.h"

namespace dtrec {

ParamBudget RecommenderTrainer::Budget() const {
  ParamBudget budget;
  budget.embedding_params = NumParameters();
  return budget;
}

std::vector<double> RecommenderTrainer::PredictMany(
    const std::vector<RatingTriple>& triples) const {
  std::vector<double> out;
  out.reserve(triples.size());
  for (const auto& t : triples) out.push_back(Predict(t.user, t.item));
  return out;
}

Matrix RecommenderTrainer::PredictFullMatrix(size_t num_users,
                                             size_t num_items) const {
  Matrix out(num_users, num_items);
  for (size_t u = 0; u < num_users; ++u) {
    for (size_t i = 0; i < num_items; ++i) out(u, i) = Predict(u, i);
  }
  return out;
}

Status MfJointTrainerBase::Fit(const RatingDataset& dataset,
                               const FitOptions& options) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  if (!options.checkpoint_dir.empty() && options.checkpoint_every == 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 1");
  }
  // Deterministic preamble: identical on a fresh run and on resume, so any
  // state it produces that the epoch loop never mutates needs no snapshot.
  rng_ = Rng(config_.seed);
  pred_ = MfModel(PredModelConfig(dataset, rng_.NextUint64()));
  opt_ = MakeOptimizer(config_.optimizer, config_.learning_rate,
                       config_.weight_decay);
  DTREC_RETURN_IF_ERROR(Setup(dataset));

  FullMatrixBatchSampler sampler(dataset, rng_.NextUint64());
  const size_t cells = dataset.num_users() * dataset.num_items();
  size_t steps = config_.steps_per_epoch;
  if (steps == 0) {
    steps = (cells + config_.batch_size - 1) / config_.batch_size;
    steps = std::min(steps, config_.max_steps_per_epoch);
  }

  const std::string ckpt_path =
      options.checkpoint_dir.empty()
          ? std::string()
          : options.checkpoint_dir + "/train_state.ckpt";
  size_t start_epoch = 0;
  if (options.resume && !ckpt_path.empty()) {
    TrainState state;
    const Status st = LoadTrainCheckpoint(ckpt_path, &state,
                                          CheckpointGroups());
    if (st.ok()) {
      if (state.method != name()) {
        return Status::FailedPrecondition(
            "checkpoint in " + options.checkpoint_dir + " belongs to '" +
            state.method + "', not '" + name() + "'");
      }
      if (state.next_epoch > config_.epochs) {
        return Status::FailedPrecondition(
            "checkpoint is at epoch " + std::to_string(state.next_epoch) +
            " but the config trains only " + std::to_string(config_.epochs));
      }
      rng_.set_state(state.trainer_rng);
      sampler.mutable_rng()->set_state(state.sampler_rng);
      start_epoch = static_cast<size_t>(state.next_epoch);
    } else if (st.code() != StatusCode::kNotFound) {
      // A corrupt checkpoint must surface, not silently train from scratch.
      return st;
    }
  }

  // Per-epoch event stream (obs/event_log.h). On resume the file is
  // opened in append mode so records for epochs [0, start_epoch) survive.
  obs::TrainEventLog event_log;
  collect_epoch_stats_ = !options.events_path.empty();
  if (collect_epoch_stats_) {
    DTREC_RETURN_IF_ERROR(
        event_log.Open(options.events_path, /*append=*/start_epoch > 0));
  }

  const InverseTimeDecayLr schedule(config_.learning_rate,
                                    config_.lr_decay);
  double current_lr = config_.learning_rate;
  for (size_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
    if (config_.lr_decay > 0.0) {
      current_lr = schedule.LearningRate(static_cast<int64_t>(epoch));
      OnLearningRate(current_lr);
    }
    DTREC_FAILPOINT("train/epoch_begin");
    const Stopwatch epoch_watch;
    const obs::PropensityClipSnapshot clip_begin =
        obs::GetPropensityClipSnapshot();
    epoch_losses_.clear();
    grad_norm_sum_ = 0.0;
    grad_norm_steps_ = 0;
    {
      DTREC_TRACE_SPAN("epoch");
      for (size_t step = 0; step < steps; ++step) {
        DTREC_TRACE_SPAN("train_step");
        TrainStep(sampler.Sample(config_.batch_size));
      }
      EpochEnd(epoch);
    }
    if (collect_epoch_stats_) {
      obs::TrainEvent event;
      event.method = name();
      event.epoch = epoch;
      event.steps = steps;
      event.wall_seconds = epoch_watch.ElapsedSeconds();
      event.learning_rate = current_lr;
      for (const auto& [loss_name, acc] : epoch_losses_) {
        event.losses.emplace_back(
            loss_name, acc.second == 0
                           ? 0.0
                           : acc.first / static_cast<double>(acc.second));
      }
      event.grad_norm =
          grad_norm_steps_ == 0
              ? 0.0
              : grad_norm_sum_ / static_cast<double>(grad_norm_steps_);
      const obs::PropensityClipSnapshot clip_delta =
          obs::GetPropensityClipSnapshot().DeltaSince(clip_begin);
      event.clip_total = clip_delta.total;
      event.clip_fired = clip_delta.fired;
      event.clip_rate = clip_delta.rate();
      // Fingerprint of every RNG the epoch loop advances (the sampler is
      // the one that actually moves per step; the trainer RNG covers
      // method-specific draws). Two runs that diverge stop matching here.
      const Rng::State trainer_rng = rng_.state();
      const Rng::State sampler_rng = sampler.mutable_rng()->state();
      event.rng_cursor = trainer_rng.s[0] ^ trainer_rng.s[1] ^
                         trainer_rng.s[2] ^ trainer_rng.s[3] ^
                         sampler_rng.s[0] ^ sampler_rng.s[1] ^
                         sampler_rng.s[2] ^ sampler_rng.s[3];
      DTREC_RETURN_IF_ERROR(event_log.Append(event));
    }
    if (!ckpt_path.empty() && ((epoch + 1) % options.checkpoint_every == 0 ||
                               epoch + 1 == config_.epochs)) {
      TrainState state;
      state.method = name();
      state.next_epoch = epoch + 1;
      state.trainer_rng = rng_.state();
      state.sampler_rng = sampler.mutable_rng()->state();
      DTREC_RETURN_IF_ERROR(
          SaveTrainCheckpoint(ckpt_path, state, CheckpointGroups()));
    }
    DTREC_FAILPOINT("train/epoch_end");
  }
  collect_epoch_stats_ = false;
  return Status::OK();
}

void MfJointTrainerBase::BackwardAndStep(ag::Tape* tape, ag::Var loss,
                                         const std::vector<ag::Var>& leaves,
                                         const std::vector<Matrix*>& params) {
  DTREC_CHECK(tape != nullptr);
  DTREC_CHECK_EQ(leaves.size(), params.size());
  {
    DTREC_TRACE_SPAN("backward");
    tape->Backward(loss);
  }
  if (collect_epoch_stats_) {
    const Matrix& loss_value = loss.value();
    if (loss_value.size() == 1) RecordEpochLoss("total", loss_value(0, 0));
    double sq_sum = 0.0;
    for (const ag::Var& leaf : leaves) {
      const Matrix& grad = tape->GradOf(leaf);
      for (size_t i = 0; i < grad.size(); ++i) {
        sq_sum += grad.at_flat(i) * grad.at_flat(i);
      }
    }
    grad_norm_sum_ += std::sqrt(sq_sum);
    ++grad_norm_steps_;
  }
  {
    DTREC_TRACE_SPAN("optimizer_step");
    for (size_t i = 0; i < leaves.size(); ++i) {
      opt_->Step(params[i], tape->GradOf(leaves[i]));
    }
  }
}

void MfJointTrainerBase::RecordEpochLoss(const char* name, double value) {
  if (!collect_epoch_stats_) return;
  auto& slot = epoch_losses_[name];
  slot.first += value;
  ++slot.second;
}

Matrix MfJointTrainerBase::IpsWeights(
    const Batch& batch,
    const std::function<double(size_t)>& propensity) const {
  const double inv_b = 1.0 / static_cast<double>(batch.size());
  Matrix w(batch.size(), 1);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch.observed(i, 0) == 0.0) continue;
    const double p = ClipPropensity(propensity(i), config_.propensity_clip);
    DTREC_ASSERT_PROPENSITY(p);
    w(i, 0) = inv_b / p;
  }
  DTREC_ASSERT_FINITE(w, "MfJointTrainerBase::IpsWeights");
  return w;
}

MfModelConfig MfJointTrainerBase::PredModelConfig(
    const RatingDataset& dataset, uint64_t seed) const {
  MfModelConfig mc;
  mc.num_users = dataset.num_users();
  mc.num_items = dataset.num_items();
  mc.dim = config_.embedding_dim;
  mc.use_bias = config_.use_bias;
  mc.init_scale = config_.init_scale;
  mc.seed = seed;
  return mc;
}

ag::Var SquaredErrorVsLabels(ag::Tape* tape, ag::Var logits,
                             const Matrix& labels) {
  DTREC_CHECK(tape != nullptr);
  ag::Var probs = ag::Sigmoid(logits);
  ag::Var residual = ag::Sub(tape->Constant(labels), probs);
  return ag::Square(residual);
}

}  // namespace dtrec
