#ifndef DTREC_BASELINES_DR_JL_H_
#define DTREC_BASELINES_DR_JL_H_

#include <string>

#include "baselines/dr.h"

namespace dtrec {

/// DR joint learning (Wang et al., ICML 2019): the pseudo-label model and
/// the prediction model update alternately each step; the imputation loss
/// is the inverse-propensity-weighted squared residual o·(e−ê)²/p̂.
class DrJlTrainer : public DrTrainerBase {
 public:
  explicit DrJlTrainer(const TrainConfig& config)
      : DrTrainerBase(config, /*joint_learning=*/true) {}

  std::string name() const override { return "DR-JL"; }
};

}  // namespace dtrec

#endif  // DTREC_BASELINES_DR_JL_H_
