#include "baselines/ips_v2.h"

// DrV2Trainer shares IPS-V2's balancing machinery and is implemented in
// ips_v2.cc; this TU anchors the target name used in DESIGN.md.
