#ifndef DTREC_UTIL_LOGGING_H_
#define DTREC_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace dtrec {

/// Severity levels for the lightweight logger. kFatal aborts the process
/// after emitting the message.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that is emitted (default kInfo). Thread-safe
/// in the sense of atomically observed by subsequent log calls.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message collector. Emits on destruction; aborts for
/// kFatal. Not for direct use: see DTREC_LOG / DTREC_CHECK below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Severity aliases so DTREC_LOG(INFO) reads like the classic glog macro.
inline constexpr LogLevel kDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kINFO = LogLevel::kInfo;
inline constexpr LogLevel kWARNING = LogLevel::kWarning;
inline constexpr LogLevel kERROR = LogLevel::kError;
inline constexpr LogLevel kFATAL = LogLevel::kFatal;

}  // namespace internal_logging
}  // namespace dtrec

/// Usage: DTREC_LOG(INFO) << "trained " << n << " epochs";
#define DTREC_LOG(severity)                                               \
  ::dtrec::internal_logging::LogMessage(                                  \
      ::dtrec::internal_logging::k##severity, __FILE__, __LINE__)         \
      .stream()

/// Fatal unless `cond` holds. Use for programmer errors / violated
/// invariants on hot paths (cheap test, no allocation when passing).
#define DTREC_CHECK(cond)                                                 \
  if (cond) {                                                             \
  } else /* NOLINT */                                                     \
    ::dtrec::internal_logging::LogMessage(::dtrec::LogLevel::kFatal,      \
                                          __FILE__, __LINE__)             \
            .stream()                                                     \
        << "Check failed: " #cond " "

#define DTREC_CHECK_EQ(a, b) DTREC_CHECK((a) == (b))
#define DTREC_CHECK_NE(a, b) DTREC_CHECK((a) != (b))
#define DTREC_CHECK_LT(a, b) DTREC_CHECK((a) < (b))
#define DTREC_CHECK_LE(a, b) DTREC_CHECK((a) <= (b))
#define DTREC_CHECK_GT(a, b) DTREC_CHECK((a) > (b))
#define DTREC_CHECK_GE(a, b) DTREC_CHECK((a) >= (b))

/// Debug-only check: compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DTREC_DCHECK(cond) \
  if (true) {              \
  } else /* NOLINT */      \
    ::dtrec::internal_logging::NullStream()
#else
#define DTREC_DCHECK(cond) DTREC_CHECK(cond)
#endif

#endif  // DTREC_UTIL_LOGGING_H_
