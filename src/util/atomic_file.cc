#include "util/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/failpoint.h"

namespace dtrec {
namespace {

Status SysError(const char* what, const std::string& path) {
  return Status::Internal(std::string(what) + " failed for '" + path +
                          "': " + std::strerror(errno));
}

/// fsync the directory containing `path` so the rename is durable.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) return SysError("open(dir)", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return SysError("fsync(dir)", dir);
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string payload) {
  DTREC_FAILPOINT_MUTATE("atomic_file/payload", payload);
  DTREC_FAILPOINT_STATUS("atomic_file/before_write");

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return SysError("open", tmp);

  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return SysError("write", tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return SysError("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return SysError("close", tmp);
  }

  // A kill here leaves `<path>.tmp` behind and `path` untouched — the
  // stale temp is harmless and gets overwritten by the next save.
  DTREC_FAILPOINT("atomic_file/after_write");

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return SysError("rename", tmp);
  }
  DTREC_RETURN_IF_ERROR(SyncParentDir(path));

  DTREC_FAILPOINT("atomic_file/after_rename");
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return SysError("read", path);
  *contents = std::move(buf).str();
  return Status::OK();
}

}  // namespace dtrec
