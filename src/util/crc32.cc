#include "util/crc32.h"

#include <array>

namespace dtrec {
namespace {

// Table generated at first use from the reflected polynomial; byte-at-a-time
// is plenty for checkpoint-sized payloads (the save path is I/O bound).
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  return kTable;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = Crc32Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dtrec
