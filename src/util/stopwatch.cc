#include "util/stopwatch.h"

// Stopwatch is header-only; this translation unit anchors the target so the
// module shows up in the library inventory and keeps room for future
// platform-specific timers (e.g. CPU-time clocks).
