#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>

#include "util/logging.h"
#include "util/string_util.h"

namespace dtrec {
namespace failpoint {
namespace {

struct ArmedSite {
  Spec spec;
  int hits = 0;   // evaluations since Arm()
  int fires = 0;  // times the action actually triggered
};

// Macro fast path: one relaxed load, no lock, no map, when nothing is armed.
std::atomic<int> g_armed_count{0};

class Registry {
 public:
  static Registry& Instance() {
    static Registry registry;
    return registry;
  }

  void Arm(std::string_view site, Spec spec) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = sites_.insert_or_assign(std::string(site),
                                                  ArmedSite{std::move(spec)});
    (void)it;
    if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }

  void Disarm(std::string_view site) {
    std::lock_guard<std::mutex> lock(mu_);
    if (sites_.erase(std::string(site)) > 0) {
      g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mu_);
    g_armed_count.fetch_sub(static_cast<int>(sites_.size()),
                            std::memory_order_relaxed);
    sites_.clear();
  }

  int HitCount(std::string_view site) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(std::string(site));
    return it == sites_.end() ? 0 : it->second.hits;
  }

  std::vector<std::string> ArmedSites() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(sites_.size());
    for (const auto& [name, armed] : sites_) names.push_back(name);
    return names;
  }

  /// Records an evaluation of `site` and decides whether it fires now.
  /// Returns the armed spec when it does.
  std::optional<Spec> Evaluate(std::string_view site) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(std::string(site));
    if (it == sites_.end()) return std::nullopt;
    ArmedSite& armed = it->second;
    ++armed.hits;
    if (armed.hits <= armed.spec.skip) return std::nullopt;
    if (armed.spec.max_hits >= 0 && armed.fires >= armed.spec.max_hits) {
      return std::nullopt;
    }
    ++armed.fires;
    return armed.spec;
  }

 private:
  Registry() {
    // Operators arm failpoints for a whole process run via the environment;
    // a malformed spec is loud but non-fatal (nothing gets armed).
    if (const char* env = std::getenv("DTREC_FAILPOINTS");
        env != nullptr && env[0] != '\0') {
      Status st = ArmFromStringImpl(env);
      if (!st.ok()) {
        DTREC_LOG(WARNING) << "ignoring DTREC_FAILPOINTS: " << st.ToString();
      }
    }
  }

  friend Status dtrec::failpoint::ArmFromString(std::string_view specs);

  Status ArmFromStringImpl(std::string_view specs);

  std::mutex mu_;
  std::map<std::string, ArmedSite> sites_;
};

/// Parses one "<site>=<action>[@skip][*max]" entry into (site, spec).
Status ParseEntry(std::string_view entry, std::string* site, Spec* spec) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("failpoint entry '" + std::string(entry) +
                                   "' is not of the form site=action");
  }
  *site = std::string(entry.substr(0, eq));
  std::string rest(entry.substr(eq + 1));

  // Strip the optional trailing modifiers, innermost-last: *max then @skip.
  auto take_int_suffix = [&](char sep, int* out) -> Status {
    const size_t pos = rest.rfind(sep);
    if (pos == std::string::npos) return Status::OK();
    const std::string digits = rest.substr(pos + 1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("failpoint modifier '" + std::string(1, sep) +
                                     digits + "' is not a number");
    }
    *out = std::stoi(digits);
    rest.resize(pos);
    return Status::OK();
  };
  int max_hits = -1;
  int skip = 0;
  DTREC_RETURN_IF_ERROR(take_int_suffix('*', &max_hits));
  DTREC_RETURN_IF_ERROR(take_int_suffix('@', &skip));
  spec->max_hits = max_hits;
  spec->skip = skip;

  const size_t colon = rest.find(':');
  const std::string action = rest.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : rest.substr(colon + 1);
  auto require_size_arg = [&](size_t* out) -> Status {
    if (arg.empty() ||
        arg.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("failpoint action '" + action +
                                     "' needs a numeric argument, got '" +
                                     arg + "'");
    }
    *out = static_cast<size_t>(std::stoull(arg));
    return Status::OK();
  };
  if (action == "abort") {
    spec->action = Action::kAbort;
  } else if (action == "error") {
    spec->action = Action::kError;
    if (!arg.empty()) spec->message = arg;
  } else if (action == "truncate") {
    spec->action = Action::kTruncate;
    DTREC_RETURN_IF_ERROR(require_size_arg(&spec->arg));
  } else if (action == "flip") {
    spec->action = Action::kFlip;
    DTREC_RETURN_IF_ERROR(require_size_arg(&spec->arg));
  } else {
    return Status::InvalidArgument("unknown failpoint action '" + action +
                                   "' (expected abort|error|truncate|flip)");
  }
  return Status::OK();
}

// The macros' AnyArmed() fast path never touches the registry, so env-var
// arming cannot stay lazy: force the registry (and its DTREC_FAILPOINTS
// parse) into existence at static-init time, before any site can be hit.
[[maybe_unused]] const bool g_env_arming_forced =
    (Registry::Instance(), true);

}  // namespace

Status Registry::ArmFromStringImpl(std::string_view specs) {
  // Parse everything before arming anything, so a malformed entry cannot
  // leave the registry half-armed.
  std::vector<std::pair<std::string, Spec>> parsed;
  for (const std::string& entry : Split(specs, ';')) {
    const std::string_view trimmed = StripWhitespace(entry);
    if (trimmed.empty()) continue;
    std::string site;
    Spec spec;
    DTREC_RETURN_IF_ERROR(ParseEntry(trimmed, &site, &spec));
    parsed.emplace_back(std::move(site), std::move(spec));
  }
  for (auto& [site, spec] : parsed) Arm(site, std::move(spec));
  return Status::OK();
}

void Arm(std::string_view site, Spec spec) {
  Registry::Instance().Arm(site, std::move(spec));
}

void Disarm(std::string_view site) { Registry::Instance().Disarm(site); }

void DisarmAll() { Registry::Instance().DisarmAll(); }

Status ArmFromString(std::string_view specs) {
  return Registry::Instance().ArmFromStringImpl(specs);
}

int HitCount(std::string_view site) {
  return Registry::Instance().HitCount(site);
}

std::vector<std::string> ArmedSites() {
  return Registry::Instance().ArmedSites();
}

bool AnyArmed() { return g_armed_count.load(std::memory_order_relaxed) > 0; }

namespace internal {

void Hit(std::string_view site) {
  std::optional<Spec> fired = Registry::Instance().Evaluate(site);
  if (!fired) return;
  if (fired->action == Action::kAbort) throw FailpointAbort(std::string(site));
  // error/truncate/flip armed on a plain site: nothing this site can do.
}

Status HitStatus(std::string_view site) {
  std::optional<Spec> fired = Registry::Instance().Evaluate(site);
  if (!fired) return Status::OK();
  switch (fired->action) {
    case Action::kAbort:
      throw FailpointAbort(std::string(site));
    case Action::kError:
      return Status::Internal(fired->message + " (failpoint '" +
                              std::string(site) + "')");
    case Action::kTruncate:
    case Action::kFlip:
      return Status::OK();  // payload actions need a *_MUTATE site
  }
  return Status::OK();
}

void HitMutate(std::string_view site, std::string& payload) {
  std::optional<Spec> fired = Registry::Instance().Evaluate(site);
  if (!fired) return;
  switch (fired->action) {
    case Action::kAbort:
      throw FailpointAbort(std::string(site));
    case Action::kError:
      return;  // status actions need a *_STATUS site
    case Action::kTruncate:
      if (fired->arg < payload.size()) payload.resize(fired->arg);
      return;
    case Action::kFlip:
      if (!payload.empty()) {
        payload[fired->arg % payload.size()] ^= static_cast<char>(0xFF);
      }
      return;
  }
}

}  // namespace internal
}  // namespace failpoint
}  // namespace dtrec
