#ifndef DTREC_UTIL_CRC32_H_
#define DTREC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dtrec {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) — the checksum
/// guarding every on-disk dtrec artifact (matrix files, train checkpoints).
/// Detects all single-byte corruptions and any burst error up to 32 bits,
/// which covers the torn-write and bit-rot cases the loaders must reject.

/// Incremental update: feed `crc = 0` for the first chunk and the previous
/// return value for subsequent chunks.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

/// One-shot convenience over a contiguous buffer.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace dtrec

#endif  // DTREC_UTIL_CRC32_H_
