#include "util/random.h"

#include <cmath>
#include <numbers>

namespace dtrec {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t n) {
  DTREC_CHECK_GT(n, 0u);
  // Rejection sampling over the largest multiple of n below 2^64.
  const uint64_t threshold = (0ULL - n) % n;  // == 2^64 mod n
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. Draw u1 in (0, 1] to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DTREC_CHECK_LE(k, n);
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + UniformIndex(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace dtrec
