#ifndef DTREC_UTIL_TABLE_WRITER_H_
#define DTREC_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace dtrec {

/// Collects rows of string cells and renders them either as an aligned
/// console table (the format the benchmark harness prints, mirroring the
/// paper's tables) or as CSV for downstream plotting.
class TableWriter {
 public:
  /// `title` is printed above the console rendering, e.g.
  /// "Table III: semi-synthetic ML-100K".
  explicit TableWriter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders an aligned, pipe-separated table.
  void RenderConsole(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote get quoted).
  void RenderCsv(std::ostream& os) const;

  /// Writes the CSV rendering to `path`.
  Status WriteCsvFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dtrec

#endif  // DTREC_UTIL_TABLE_WRITER_H_
