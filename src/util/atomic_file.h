#ifndef DTREC_UTIL_ATOMIC_FILE_H_
#define DTREC_UTIL_ATOMIC_FILE_H_

#include <string>

#include "util/status.h"

namespace dtrec {

/// Durably replaces the file at `path` with `payload`, crash-atomically:
/// the payload is written to `<path>.tmp`, flushed and fsync'd, then
/// rename(2)'d over `path`, and the containing directory is fsync'd so the
/// rename itself survives power loss. At every instant `path` either holds
/// its previous content or the complete new payload — never a torn mix.
///
/// All writers of recoverable artifacts (matrix files, model checkpoints,
/// dataset exports) must go through this function; the `raw-ofstream-write`
/// lint rule flags direct std::ofstream writes to final paths.
///
/// Failpoint sites, in order ("atomic_file/…"):
///   payload        (mutate)  corrupt bytes before they reach the disk
///   before_write   (status)  fail before the temp file exists
///   after_write    (abort)   kill after the temp is durable, before rename
///   after_rename   (abort)   kill after the commit point
Status WriteFileAtomic(const std::string& path, std::string payload);

/// Slurps the whole file at `path` into `*contents`. NotFound when the file
/// cannot be opened, Internal on a short read.
Status ReadFile(const std::string& path, std::string* contents);

}  // namespace dtrec

#endif  // DTREC_UTIL_ATOMIC_FILE_H_
