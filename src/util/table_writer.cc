#include "util/table_writer.h"

#include <algorithm>
#include <sstream>

#include "util/atomic_file.h"
#include "util/logging.h"

namespace dtrec {
namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TableWriter::SetHeader(std::vector<std::string> header) {
  DTREC_CHECK(rows_.empty()) << "SetHeader must precede AddRow";
  header_ = std::move(header);
}

void TableWriter::AddRow(std::vector<std::string> row) {
  DTREC_CHECK(!header_.empty()) << "SetHeader must be called first";
  DTREC_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::RenderConsole(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };

  os << "== " << title_ << " ==\n";
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::RenderCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

Status TableWriter::WriteCsvFile(const std::string& path) const {
  // Atomic rename-commit: a reader (or a crashed bench re-run) never sees
  // a half-written CSV, and ENOSPC fails before the old file is replaced.
  std::ostringstream os;
  RenderCsv(os);
  return WriteFileAtomic(path, os.str());
}

}  // namespace dtrec
