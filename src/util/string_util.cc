#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace dtrec {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // vsnprintf writes the terminating NUL into needed+1 bytes; data() of a
    // non-const string has room for it since C++11.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\n' ||
          s[begin] == '\r')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\n' || s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace dtrec
