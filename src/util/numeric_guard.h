#ifndef DTREC_UTIL_NUMERIC_GUARD_H_
#define DTREC_UTIL_NUMERIC_GUARD_H_

#include <cmath>
#include <cstddef>

#include "util/logging.h"

// Numeric-contract guards.
//
// Every debiased estimator in dtrec divides by a learned propensity, so a
// single un-clipped p ≈ 0 or a NaN leaking out of the autograd tape
// silently corrupts the unbiasedness results the Lemma 2 / Theorem 1
// experiments demonstrate. These macros make the contracts machine-checked
// at the op that first violates them, instead of surfacing as a wrong MAE
// three tables later.
//
// The guards are compiled in only under -DDTREC_NUMERIC_CHECKS=ON (CMake
// option). In a regular build they expand to a dead `sizeof` so arguments
// are type-checked but never evaluated — zero runtime overhead.
//
//   DTREC_ASSERT_FINITE(mat, op)   every entry of `mat` finite; `op` names
//                                  the producing operation in the message
//   DTREC_ASSERT_FINITE_VAL(x, op) scalar variant
//   DTREC_ASSERT_PROPENSITY(p)     p finite and in (0, 1]
//   DTREC_ASSERT_SHAPE(a, b)       matrices have identical rows()/cols()

namespace dtrec {

#ifdef DTREC_NUMERIC_CHECKS
inline constexpr bool kNumericChecksEnabled = true;
#else
inline constexpr bool kNumericChecksEnabled = false;
#endif

namespace numeric_internal {

/// First non-finite entry of a flat buffer, or `size` if all finite.
/// Out-of-line loop so the guard macro stays cheap at the call site.
template <typename MatLike>
size_t FirstNonFinite(const MatLike& mat) {
  const size_t n = mat.size();
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(mat.at_flat(i))) return i;
  }
  return n;
}

}  // namespace numeric_internal
}  // namespace dtrec

#ifdef DTREC_NUMERIC_CHECKS

#define DTREC_ASSERT_FINITE(mat, op)                                       \
  do {                                                                     \
    const auto& dtrec_ng_m_ = (mat);                                       \
    const size_t dtrec_ng_i_ =                                             \
        ::dtrec::numeric_internal::FirstNonFinite(dtrec_ng_m_);            \
    if (dtrec_ng_i_ < dtrec_ng_m_.size()) {                                \
      DTREC_LOG(FATAL) << "numeric check failed: op " << (op)              \
                       << " produced non-finite value "                    \
                       << dtrec_ng_m_.at_flat(dtrec_ng_i_)                 \
                       << " at flat index " << dtrec_ng_i_ << " ("         \
                       << dtrec_ng_m_.rows() << "x" << dtrec_ng_m_.cols()  \
                       << ")";                                             \
    }                                                                      \
  } while (0)

#define DTREC_ASSERT_FINITE_VAL(x, op)                                     \
  do {                                                                     \
    const double dtrec_ng_x_ = (x);                                        \
    if (!std::isfinite(dtrec_ng_x_)) {                                     \
      DTREC_LOG(FATAL) << "numeric check failed: op " << (op)              \
                       << " produced non-finite value " << dtrec_ng_x_;    \
    }                                                                      \
  } while (0)

#define DTREC_ASSERT_PROPENSITY(p)                                         \
  do {                                                                     \
    const double dtrec_ng_p_ = (p);                                        \
    if (!(std::isfinite(dtrec_ng_p_) && dtrec_ng_p_ > 0.0 &&               \
          dtrec_ng_p_ <= 1.0)) {                                           \
      DTREC_LOG(FATAL) << "numeric check failed: propensity " #p " = "     \
                       << dtrec_ng_p_ << " outside (0, 1]";                \
    }                                                                      \
  } while (0)

#define DTREC_ASSERT_SHAPE(a, b)                                           \
  do {                                                                     \
    const auto& dtrec_ng_a_ = (a);                                         \
    const auto& dtrec_ng_b_ = (b);                                         \
    if (dtrec_ng_a_.rows() != dtrec_ng_b_.rows() ||                        \
        dtrec_ng_a_.cols() != dtrec_ng_b_.cols()) {                        \
      DTREC_LOG(FATAL) << "numeric check failed: shape mismatch " #a " ("  \
                       << dtrec_ng_a_.rows() << "x" << dtrec_ng_a_.cols()  \
                       << ") vs " #b " (" << dtrec_ng_b_.rows() << "x"     \
                       << dtrec_ng_b_.cols() << ")";                       \
    }                                                                      \
  } while (0)

#else  // !DTREC_NUMERIC_CHECKS

// Arguments are type-checked inside an unevaluated sizeof, never executed.
#define DTREC_ASSERT_FINITE(mat, op) \
  do {                               \
    (void)sizeof(mat);               \
    (void)sizeof(op);                \
  } while (0)
#define DTREC_ASSERT_FINITE_VAL(x, op) \
  do {                                 \
    (void)sizeof(x);                   \
    (void)sizeof(op);                  \
  } while (0)
#define DTREC_ASSERT_PROPENSITY(p) \
  do {                             \
    (void)sizeof(p);               \
  } while (0)
#define DTREC_ASSERT_SHAPE(a, b) \
  do {                           \
    (void)sizeof(a);             \
    (void)sizeof(b);             \
  } while (0)

#endif  // DTREC_NUMERIC_CHECKS

#endif  // DTREC_UTIL_NUMERIC_GUARD_H_
