#ifndef DTREC_UTIL_STOPWATCH_H_
#define DTREC_UTIL_STOPWATCH_H_

#include <chrono>

namespace dtrec {

/// Wall-clock stopwatch used to instrument training/inference time for the
/// efficiency experiments (paper Table VI, Figure 5).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed; the serving latency histograms record at µs
  /// resolution (sub-ms tail percentiles are meaningless in ms).
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dtrec

#endif  // DTREC_UTIL_STOPWATCH_H_
