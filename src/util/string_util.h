#ifndef DTREC_UTIL_STRING_UTIL_H_
#define DTREC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dtrec {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Fixed-precision decimal rendering, e.g. FormatDouble(0.12345, 4) ==
/// "0.1234" — used by the table writer so experiment output matches the
/// paper's column formats.
std::string FormatDouble(double v, int precision);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace dtrec

#endif  // DTREC_UTIL_STRING_UTIL_H_
