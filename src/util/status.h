#ifndef DTREC_UTIL_STATUS_H_
#define DTREC_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "util/logging.h"

namespace dtrec {

/// Canonical error space for fallible dtrec operations. Mirrors the small
/// subset of codes the library actually produces; keep this list short.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kNotSupported = 6,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// dtrec follows the RocksDB/Arrow idiom: user-facing operations that can
/// fail for data-dependent reasons (bad configuration, empty dataset,
/// dimension mismatch at API boundaries) return Status rather than throwing.
/// Violated internal invariants use DTREC_CHECK instead.
///
/// The OK status carries no allocation; error statuses own their message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Value-or-error holder for functions that produce a T on success.
///
/// Unlike std::expected (C++23) this is a minimal C++20 stand-in with the
/// same access pattern: check ok(), then value().
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::InvalidArgument(...);`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Checked in debug builds: reading the value of an
  /// error Result dies loudly instead of handing back a default-
  /// constructed T that would corrupt whatever consumes it.
  const T& value() const& {
    DTREC_DCHECK(ok()) << "value() called on error Result: " << status_;
    return value_;
  }
  T& value() & {
    DTREC_DCHECK(ok()) << "value() called on error Result: " << status_;
    return value_;
  }
  T&& value() && {
    DTREC_DCHECK(ok()) << "value() called on error Result: " << status_;
    return std::move(value_);
  }

 private:
  T value_{};
  Status status_;
};

/// Propagates a non-OK Status from the current function.
#define DTREC_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::dtrec::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace dtrec

#endif  // DTREC_UTIL_STATUS_H_
