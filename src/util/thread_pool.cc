#include "util/thread_pool.h"

#include <utility>

namespace dtrec {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_) {
      if (max_queue_ > 0 && queue_.size() >= max_queue_) return false;
      queue_.push_back(std::move(task));
      work_cv_.notify_one();
      return true;
    }
  }
  // Pool already shut down: degrade to inline execution rather than
  // dropping the task.
  task();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::pending() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace dtrec
