#ifndef DTREC_UTIL_RANDOM_H_
#define DTREC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dtrec {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in dtrec draws from an explicitly seeded Rng
/// so that experiments are reproducible bit-for-bit across runs and across
/// machines (the standard library distributions are implementation-defined,
/// so we implement our own transforms).
class Rng {
 public:
  /// Seeds the state via SplitMix64 applied to `seed`, per the xoshiro
  /// authors' recommendation. Any seed value (including 0) is valid.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0. Uses rejection sampling to avoid
  /// modulo bias.
  uint64_t UniformUint64(uint64_t n);

  /// Uniform integer index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    return static_cast<size_t>(UniformUint64(static_cast<uint64_t>(n)));
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Standard normal via Box–Muller transform (cached second value).
  double Normal();

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    DTREC_CHECK(v != nullptr);
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = UniformIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (partial Fisher–Yates). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; use to hand deterministic
  /// sub-streams to parallel or modular components.
  Rng Fork();

  /// Complete generator state — the xoshiro words plus the Box–Muller
  /// cache. Capturing and restoring it resumes the stream bit-identically,
  /// which is what makes killed-and-resumed training replay the exact
  /// sample sequence of an uninterrupted run (see core/train_checkpoint.h).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, has_cached_normal_,
                 cached_normal_};
  }

  void set_state(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    has_cached_normal_ = state.has_cached_normal;
    cached_normal_ = state.cached_normal;
  }

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dtrec

#endif  // DTREC_UTIL_RANDOM_H_
