#ifndef DTREC_UTIL_MATH_UTIL_H_
#define DTREC_UTIL_MATH_UTIL_H_

#include <cmath>

#include "obs/prop_stats.h"

namespace dtrec {

/// Numerically stable logistic sigmoid.
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// Inverse sigmoid. Input must be in (0, 1).
inline double Logit(double p) { return std::log(p / (1.0 - p)); }

/// Clamps v into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Standard normal density.
inline double NormalPdf(double x) {
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

/// log(1 + exp(x)) without overflow.
inline double Log1pExp(double x) {
  if (x > 0.0) return x + std::log1p(std::exp(-x));
  return std::log1p(std::exp(x));
}

/// Binary cross-entropy for a single prediction p in (0,1) against label
/// y in {0,1}; clamps p away from {0,1} for stability.
inline double BinaryCrossEntropy(double y, double p) {
  const double q = Clamp(p, 1e-12, 1.0 - 1e-12);
  return -(y * std::log(q) + (1.0 - y) * std::log(1.0 - q));
}

/// Safe reciprocal: 1 / max(v, floor). The blessed way to invert a learned
/// propensity-like quantity (enforced by tools/dtrec_lint); the floor keeps
/// the inverse finite when the estimate collapses toward zero. Every call
/// feeds the process-wide clip counters (obs/prop_stats.h) — the floored
/// fraction is the extreme-inverse-propensity-variance early-warning
/// signal exported via metrics and the training event stream.
inline double SafeInverse(double v, double floor = 1e-12) {
  const bool fired = v < floor;
  obs::RecordPropensityClip(fired);
  return 1.0 / (fired ? floor : v);
}

/// True if |a - b| <= atol + rtol * |b|.
inline bool AlmostEqual(double a, double b, double atol = 1e-9,
                        double rtol = 1e-7) {
  return std::fabs(a - b) <= atol + rtol * std::fabs(b);
}

}  // namespace dtrec

#endif  // DTREC_UTIL_MATH_UTIL_H_
