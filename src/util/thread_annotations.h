#ifndef DTREC_UTIL_THREAD_ANNOTATIONS_H_
#define DTREC_UTIL_THREAD_ANNOTATIONS_H_

// Lock-discipline annotations, checked statically by dtrec_analyze
// (tools/analysis). Both macros expand to nothing — they exist so the
// locking contract is written next to the data it protects and so the
// `analyze` CTest can flag accesses that break it:
//
//   std::mutex mu_;
//   std::map<std::string, uint64_t> counters_ DTREC_GUARDED_BY(mu_);
//
//   void RegistryLocked() DTREC_REQUIRES(mu_);  // caller holds mu_
//
// DTREC_GUARDED_BY(mu) marks a field that must only be read or written
// while `mu` is held (a lock_guard / unique_lock / scoped_lock naming it
// is in scope). DTREC_REQUIRES(mu) marks a function whose caller must
// already hold `mu`; the function body is then checked as if the lock
// were taken on entry.
//
// The checker matches mutexes by name, not object identity, and cannot
// see conditional locking or early unlock() — it is the static
// complement to the TSan CI leg, not a replacement for it.

#define DTREC_GUARDED_BY(mu)
#define DTREC_REQUIRES(mu)

#endif  // DTREC_UTIL_THREAD_ANNOTATIONS_H_
