#ifndef DTREC_UTIL_FAILPOINT_H_
#define DTREC_UTIL_FAILPOINT_H_

#include <cstddef>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

// Failpoint fault-injection registry.
//
// Code annotates crash-sensitive boundaries with named sites:
//
//   DTREC_FAILPOINT("checkpoint/after_header");          // may simulate a kill
//   DTREC_FAILPOINT_STATUS("atomic_file/before_write");  // may inject a Status
//   DTREC_FAILPOINT_MUTATE("atomic_file/payload", buf);  // may truncate/flip
//
// Tests arm sites programmatically via failpoint::Arm(); operators arm them
// through the DTREC_FAILPOINTS environment variable, e.g.
//
//   DTREC_FAILPOINTS="train/epoch_end=abort@2;atomic_file/payload=flip:7"
//
// Spec grammar (one entry per site, entries separated by ';'):
//
//   <site>=<action>[@<skip>][*<max_hits>]
//   action := abort                 simulate a kill: throw FailpointAbort
//           | error[:<message>]     injected Status(kInternal, message)
//           | truncate:<nbytes>     keep only the first n bytes of a payload
//           | flip:<offset>         XOR the payload byte at offset with 0xFF
//   @<skip>      let the first <skip> evaluations pass before firing
//   *<max_hits>  fire at most <max_hits> times, then go dormant
//
// When the build disables failpoints (-DDTREC_FAILPOINTS=OFF) every macro
// compiles to an empty statement — release bench binaries carry no trace of
// the subsystem. When enabled but nothing is armed, the cost per site is a
// single relaxed atomic load.

#ifndef DTREC_FAILPOINTS_ENABLED
#define DTREC_FAILPOINTS_ENABLED 0
#endif

namespace dtrec {
namespace failpoint {

/// Thrown by an armed `abort` failpoint: simulates the process dying at the
/// annotated site. Only fault-tolerance harnesses (tests, the sweep retry
/// loop, the CLI) catch it; everything in between unwinds as if killed.
class FailpointAbort : public std::exception {
 public:
  explicit FailpointAbort(std::string site)
      : site_(std::move(site)),
        what_("simulated crash at failpoint '" + site_ + "'") {}
  const char* what() const noexcept override { return what_.c_str(); }
  const std::string& site() const { return site_; }

 private:
  std::string site_;
  std::string what_;
};

/// What an armed site does when it fires.
enum class Action {
  kAbort,     // throw FailpointAbort (simulated kill)
  kError,     // inject Status(kInternal, message) at *_STATUS sites
  kTruncate,  // shrink a payload to `arg` bytes at *_MUTATE sites
  kFlip,      // XOR payload byte at offset `arg` at *_MUTATE sites
};

struct Spec {
  Action action = Action::kAbort;
  std::string message = "injected failure";  // kError status message
  size_t arg = 0;       // truncate length / flip offset
  int skip = 0;         // evaluations to let pass before firing
  int max_hits = -1;    // fires allowed after skip; -1 = unlimited
};

/// Arm `site` (replacing any previous arming and resetting its counters).
void Arm(std::string_view site, Spec spec);

/// Disarm one site / all sites. DisarmAll() is the test-teardown hammer.
void Disarm(std::string_view site);
void DisarmAll();

/// Parse the DTREC_FAILPOINTS grammar above and arm every entry.
/// On a malformed entry nothing is armed and an error Status names it.
Status ArmFromString(std::string_view specs);

/// Total evaluations of an armed site since Arm() (fired or not); 0 when the
/// site is not armed. Lets tests assert that a site was actually reached.
int HitCount(std::string_view site);

/// Sites currently armed, sorted — for diagnostics.
std::vector<std::string> ArmedSites();

/// True when at least one site is armed. This is the macro fast path; it is
/// a single relaxed atomic load, safe to evaluate on every call.
bool AnyArmed();

// Slow-path entry points behind the macros. They self-initialise the
// registry from the DTREC_FAILPOINTS env var on first use.
namespace internal {
void Hit(std::string_view site);                      // abort only
Status HitStatus(std::string_view site);              // abort | error
void HitMutate(std::string_view site, std::string& payload);  // all four
}  // namespace internal

}  // namespace failpoint
}  // namespace dtrec

#if DTREC_FAILPOINTS_ENABLED

/// Simulated-kill site: throws FailpointAbort when armed with `abort`.
#define DTREC_FAILPOINT(site)                       \
  do {                                              \
    if (::dtrec::failpoint::AnyArmed()) {           \
      ::dtrec::failpoint::internal::Hit(site);      \
    }                                               \
  } while (0)

/// Status-injection site: `return`s the injected Status when armed with
/// `error`; throws on `abort`. Use only in functions returning Status.
#define DTREC_FAILPOINT_STATUS(site)                                     \
  do {                                                                   \
    if (::dtrec::failpoint::AnyArmed()) {                                \
      if (::dtrec::Status fp_st =                                        \
              ::dtrec::failpoint::internal::HitStatus(site);             \
          !fp_st.ok()) {                                                 \
        return fp_st;                                                    \
      }                                                                  \
    }                                                                    \
  } while (0)

/// Payload-corruption site: truncates or bit-flips `payload` (a
/// std::string) when armed with `truncate`/`flip`; throws on `abort`.
#define DTREC_FAILPOINT_MUTATE(site, payload)                    \
  do {                                                           \
    if (::dtrec::failpoint::AnyArmed()) {                        \
      ::dtrec::failpoint::internal::HitMutate(site, payload);    \
    }                                                            \
  } while (0)

#else  // !DTREC_FAILPOINTS_ENABLED

#define DTREC_FAILPOINT(site) \
  do {                        \
  } while (0)
#define DTREC_FAILPOINT_STATUS(site) \
  do {                               \
  } while (0)
#define DTREC_FAILPOINT_MUTATE(site, payload) \
  do {                                        \
  } while (0)

#endif  // DTREC_FAILPOINTS_ENABLED

#endif  // DTREC_UTIL_FAILPOINT_H_
