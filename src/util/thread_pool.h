#ifndef DTREC_UTIL_THREAD_POOL_H_
#define DTREC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dtrec {

/// Fixed-size worker pool with a FIFO task queue.
///
/// The serving subsystem fans concurrent RecommendRequests across this
/// pool; it is deliberately minimal — no priorities, no work stealing —
/// because a request is a single short CPU-bound scoring pass and FIFO
/// order is what the per-request deadline semantics assume.
///
/// Shutdown *drains*: every task submitted before Shutdown() (or the
/// destructor) runs to completion before the workers join. Tasks submitted
/// after shutdown execute inline on the calling thread, so no work is ever
/// silently dropped.
///
/// A non-zero `max_queue` bounds the number of *waiting* tasks: Submit()
/// refuses (returns false, task untouched) once the backlog reaches the
/// cap, giving callers a backpressure signal instead of an unbounded
/// queue whose tail latency grows without limit under overload.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1). `max_queue` = 0 means an
  /// unbounded task queue (the historical behavior).
  explicit ThreadPool(size_t num_threads, size_t max_queue = 0);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution; wakes one idle worker. Returns false
  /// (dropping nothing — `task` simply never ran) when the bounded queue
  /// is full; the caller decides how to shed. After Shutdown(), runs
  /// `task` inline instead and returns true.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is mid-task. The pool
  /// stays usable afterwards (unlike Shutdown).
  void WaitIdle();

  /// Drains all queued tasks, then stops and joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks queued but not yet picked up (instantaneous, for monitoring).
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable idle_cv_;   // signals WaitIdle: drained + idle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t max_queue_ = 0;  // 0 = unbounded
  size_t active_ = 0;     // workers currently running a task
  bool stop_ = false;
};

}  // namespace dtrec

#endif  // DTREC_UTIL_THREAD_POOL_H_
