#include "serve/admission_controller.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dtrec::serve {

namespace {

double SteadyNowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config,
                                         obs::MetricsRegistry* metrics,
                                         const std::string& prefix,
                                         ClockFn clock)
    : config_(config),
      capacity_(config.burst > 0.0 ? config.burst : config.rate_per_s),
      clock_(clock ? std::move(clock) : ClockFn(&SteadyNowMicros)),
      tokens_(capacity_),
      last_refill_us_(clock_()),
      admitted_counter_(metrics ? metrics->GetCounter(prefix + ".admitted")
                                : nullptr),
      rejected_rate_counter_(
          metrics ? metrics->GetCounter(prefix + ".rejected_rate") : nullptr),
      rejected_depth_counter_(
          metrics ? metrics->GetCounter(prefix + ".rejected_depth")
                  : nullptr) {}

void AdmissionController::RefillLocked(double now_us) DTREC_REQUIRES(mu_) {
  const double elapsed_s = std::max(now_us - last_refill_us_, 0.0) * 1e-6;
  tokens_ = std::min(tokens_ + elapsed_s * config_.rate_per_s, capacity_);
  last_refill_us_ = now_us;
}

AdmissionController::Decision AdmissionController::TryAdmit(
    size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.max_queue_depth > 0 && queue_depth >= config_.max_queue_depth) {
    ++rejected_depth_;
    if (rejected_depth_counter_ != nullptr) {
      rejected_depth_counter_->Increment();
    }
    return Decision::kRejectDepth;
  }
  if (config_.rate_per_s > 0.0) {
    RefillLocked(clock_());
    if (tokens_ < 1.0) {
      ++rejected_rate_;
      if (rejected_rate_counter_ != nullptr) {
        rejected_rate_counter_->Increment();
      }
      return Decision::kRejectRate;
    }
    tokens_ -= 1.0;
  }
  ++admitted_;
  if (admitted_counter_ != nullptr) admitted_counter_->Increment();
  return Decision::kAdmit;
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::rejected_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_rate_;
}

uint64_t AdmissionController::rejected_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_depth_;
}

double AdmissionController::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Read-only callers still see the refilled value: const_cast-free by
  // computing the refill without committing it.
  const double elapsed_s =
      std::max(clock_() - last_refill_us_, 0.0) * 1e-6;
  return std::min(tokens_ + elapsed_s * config_.rate_per_s, capacity_);
}

RetryBudget::RetryBudget(RetryBudgetConfig config)
    : config_(config), tokens_(config.burst) {}

void RetryBudget::RecordRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(tokens_ + config_.per_request_deposit, config_.burst);
}

bool RetryBudget::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

}  // namespace dtrec::serve
