#include "serve/circuit_breaker.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dtrec::serve {

namespace {

double SteadyNowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CircuitBreaker::CircuitBreaker(std::string name, CircuitBreakerConfig config,
                               obs::MetricsRegistry* metrics, ClockFn clock)
    : name_(std::move(name)),
      config_(config),
      clock_(clock ? std::move(clock) : ClockFn(&SteadyNowMicros)),
      backoff_ms_(config.initial_backoff_ms),
      state_gauge_(metrics ? metrics->GetGauge(name_ + ".state") : nullptr),
      open_transitions_counter_(
          metrics ? metrics->GetCounter(name_ + ".open_transitions")
                  : nullptr),
      failures_counter_(metrics ? metrics->GetCounter(name_ + ".failures")
                                : nullptr),
      rejected_counter_(metrics ? metrics->GetCounter(name_ + ".rejected")
                                : nullptr) {
  if (state_gauge_ != nullptr) state_gauge_->Set(0.0);
}

void CircuitBreaker::TransitionToOpenLocked(double now_us)
    DTREC_REQUIRES(mu_) {
  state_ = State::kOpen;
  probe_in_flight_ = false;
  probe_successes_ = 0;
  open_until_us_ = now_us + backoff_ms_ * 1e3;
  ++open_transitions_;
  if (open_transitions_counter_ != nullptr) {
    open_transitions_counter_->Increment();
  }
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(State::kOpen));
  }
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const double now_us = clock_();
      if (now_us < open_until_us_) {
        ++rejected_;
        if (rejected_counter_ != nullptr) rejected_counter_->Increment();
        return false;
      }
      // Backoff elapsed: half-open, admit this caller as the one probe.
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      probe_successes_ = 0;
      if (state_gauge_ != nullptr) {
        state_gauge_->Set(static_cast<double>(State::kHalfOpen));
      }
      return true;
    }
    case State::kHalfOpen:
      if (probe_in_flight_) {
        ++rejected_;
        if (rejected_counter_ != nullptr) rejected_counter_->Increment();
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      return;
    case State::kOpen:
      // A call admitted before the trip concluding late: ignore — the
      // backoff clock decides when to probe.
      return;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++probe_successes_ >= config_.probe_successes_to_close) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
        backoff_ms_ = config_.initial_backoff_ms;
        if (state_gauge_ != nullptr) {
          state_gauge_->Set(static_cast<double>(State::kClosed));
        }
      }
      return;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
  if (failures_counter_ != nullptr) failures_counter_->Increment();
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TransitionToOpenLocked(clock_());
      }
      return;
    case State::kOpen:
      return;  // late conclusion of a pre-trip call
    case State::kHalfOpen:
      // Failed probe: back off harder and re-open.
      probe_in_flight_ = false;
      backoff_ms_ = std::min(backoff_ms_ * config_.backoff_multiplier,
                             config_.max_backoff_ms);
      TransitionToOpenLocked(clock_());
      return;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::open_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_transitions_;
}

uint64_t CircuitBreaker::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

uint64_t CircuitBreaker::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

void CircuitBreaker::ForceClose() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  probe_in_flight_ = false;
  backoff_ms_ = config_.initial_backoff_ms;
  if (state_gauge_ != nullptr) {
    state_gauge_->Set(static_cast<double>(State::kClosed));
  }
}

}  // namespace dtrec::serve
