#include "serve/recommend_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dtrec::serve {

namespace {

obs::MetricsRegistry* OrGlobal(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? metrics : &obs::GlobalMetrics();
}

}  // namespace

RecommendServer::RecommendServer(const ModelRegistry* registry,
                                 ServerConfig config)
    : registry_(registry),
      config_(std::move(config)),
      scorer_(config_.cache),
      metrics_(OrGlobal(config_.metrics)),
      requests_(metrics_->GetCounter(config_.metrics_prefix + ".requests")),
      rung_full_(
          metrics_->GetCounter(config_.metrics_prefix + ".rung_full")),
      rung_cached_(
          metrics_->GetCounter(config_.metrics_prefix + ".rung_cached")),
      rung_popularity_(
          metrics_->GetCounter(config_.metrics_prefix + ".rung_popularity")),
      rung_shed_(
          metrics_->GetCounter(config_.metrics_prefix + ".rung_shed")),
      deadline_miss_(
          metrics_->GetCounter(config_.metrics_prefix + ".deadline_miss")),
      queue_shed_(
          metrics_->GetCounter(config_.metrics_prefix + ".queue_shed")),
      breaker_open_(
          metrics_->GetCounter(config_.metrics_prefix + ".breaker_open")),
      cache_hits_(
          metrics_->GetCounter(config_.metrics_prefix + ".cache_hits")),
      cache_misses_(
          metrics_->GetCounter(config_.metrics_prefix + ".cache_misses")),
      retries_(metrics_->GetCounter(config_.metrics_prefix + ".retries")),
      retry_denied_(
          metrics_->GetCounter(config_.metrics_prefix + ".retry_denied")),
      swaps_(metrics_->GetCounter(config_.metrics_prefix + ".model_swaps")),
      generation_(metrics_->GetGauge(config_.metrics_prefix + ".generation")),
      queue_hist_(
          metrics_->GetHistogram(config_.metrics_prefix + ".queue_us")),
      score_hist_(
          metrics_->GetHistogram(config_.metrics_prefix + ".score_us")),
      total_hist_(
          metrics_->GetHistogram(config_.metrics_prefix + ".total_us")),
      admission_(config_.admission, metrics_,
                 config_.metrics_prefix + ".admission"),
      retry_budget_(config_.retry),
      scorer_breaker_(config_.metrics_prefix + ".breaker.scorer",
                      config_.breaker, metrics_, config_.breaker_clock),
      cache_breaker_(config_.metrics_prefix + ".breaker.cache",
                     config_.breaker, metrics_, config_.breaker_clock),
      pool_(config_.num_threads, config_.max_queue) {
  DTREC_CHECK(registry != nullptr);
  // A fresh server owns its metric prefix and starts from zero — a prior
  // (dead) server with the same prefix must not leak counts into this
  // one's stats. Two live servers therefore need distinct prefixes.
  ResetStats();
  if (config_.stats_dump_period_s > 0.0) {
    dump_thread_ = std::thread([this] { StatsDumpLoop(); });
  }
}

RecommendServer::~RecommendServer() {
  if (dump_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dump_mu_);
      stop_dump_ = true;
    }
    dump_cv_.notify_all();
    dump_thread_.join();
  }
  pool_.Shutdown();
}

void RecommendServer::StatsDumpLoop() {
  const auto period = std::chrono::duration<double>(
      config_.stats_dump_period_s);
  std::unique_lock<std::mutex> lock(dump_mu_);
  while (!stop_dump_) {
    if (dump_cv_.wait_for(lock, period, [this] { return stop_dump_; })) {
      break;
    }
    // Snapshot() touches only registry metrics and the model registry —
    // safe without dump_mu_, but holding it is fine (nothing else blocks
    // on it except shutdown).
    DTREC_LOG(INFO) << "[" << config_.metrics_prefix << "] "
                    << Snapshot().Summary();
  }
}

std::future<Recommendation> RecommendServer::Submit(
    const RecommendRequest& request) {
  bool admitted = true;
  try {
    DTREC_FAILPOINT("serve/queue_admit");
  } catch (const failpoint::FailpointAbort&) {
    // An injected admission fault sheds the request — the front door
    // refusing is exactly what this failpoint simulates.
    admitted = false;
  }
  if (admitted && admission_.TryAdmit(pool_.pending()) !=
                      AdmissionController::Decision::kAdmit) {
    admitted = false;
  }
  // The trace id is minted at the front door — before the admission
  // verdict — so a shed request's annotation chain carries the same kind
  // of identity as a served one.
  const uint64_t trace_id = obs::NewTraceId();
  if (admitted) {
    auto task = std::make_shared<std::packaged_task<Recommendation()>>(
        [this, request, trace_id, submitted = Stopwatch()] {
          return Handle(request, submitted.ElapsedMicros(),
                        DegradeReason::kNone, trace_id);
        });
    std::future<Recommendation> future = task->get_future();
    if (pool_.Submit([task] { (*task)(); })) return future;
    // Backlog at max_queue despite admission: fall through to the shed
    // path. (Admission depth and pool bound race benignly — both resolve
    // to the same rung.)
  }
  // Shed on the caller's thread: O(1), empty slate, future already
  // resolved. Overload costs a refusal per excess request instead of an
  // ever-longer queue of doomed scoring passes.
  std::packaged_task<Recommendation()> shed_task([this, &request, trace_id] {
    return Handle(request, /*waited_us=*/0.0, DegradeReason::kQueueShed,
                  trace_id);
  });
  std::future<Recommendation> future = shed_task.get_future();
  shed_task();
  return future;
}

Recommendation RecommendServer::Recommend(const RecommendRequest& request) {
  return Handle(request, /*waited_us=*/0.0);
}

Recommendation RecommendServer::Handle(const RecommendRequest& request,
                                       double waited_us, DegradeReason forced,
                                       uint64_t trace_id) {
  // Request-scoped identity: every span recorded below (and the
  // histogram exemplars at the bottom) carries this id, so a tail bucket
  // in the latency histogram resolves to this request's span tree in the
  // flushed trace.
  const obs::TraceContext trace(trace_id != 0 ? trace_id : obs::NewTraceId());
  // Head-sampling: only every trace_sample_every-th request records spans
  // and exemplar identity — the rest keep their minted id but pay two
  // thread-local writes instead of per-span clock reads, which is what
  // keeps armed tracing within the §5k overhead budget at capacity.
  const size_t sample_every = config_.trace_sample_every;
  const obs::TraceSampleScope sample(
      sample_every <= 1 ||
      trace_tick_.fetch_add(1, std::memory_order_relaxed) % sample_every ==
          0);
  DTREC_TRACE_SPAN("serve_handle");
  const Stopwatch handle_watch;
  Recommendation response;
  response.queue_us = waited_us;

  std::shared_ptr<const ServingModel> model = registry_->Acquire();
  DTREC_CHECK(model != nullptr) << "no model published before serving";

  // Eager cache invalidation on swap. Correctness does not depend on
  // winning this race — cache entries are generation-checked — so a
  // compare_exchange miss against a concurrent observer is fine.
  uint64_t seen = seen_generation_.load(std::memory_order_acquire);
  const uint64_t generation = model->generation();
  if (seen != generation &&
      seen_generation_.compare_exchange_strong(seen, generation,
                                               std::memory_order_acq_rel)) {
    if (seen != 0) swaps_->Increment();
    generation_->Set(static_cast<double>(generation));
    scorer_.InvalidateAll();
  }
  response.generation = generation;

  const size_t k =
      std::min(request.k > 0 ? request.k : config_.default_k,
               model->num_items());
  const double deadline_ms = request.deadline_ms >= 0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;
  const double deadline_us = deadline_ms >= 0 ? deadline_ms * 1e3 : -1.0;

  const Stopwatch stage_watch;
  if (forced == DegradeReason::kQueueShed) {
    // Refused at the front door: bottom rung, empty slate, O(1).
    response.rung = ServeRung::kShed;
    response.reason = DegradeReason::kQueueShed;
  } else if (deadline_us >= 0 && waited_us >= deadline_us) {
    // Budget burned in the queue: serve the precomputed popularity
    // ranking instead of burning more time on a full scoring pass.
    PopularitySlate(*model, k, DegradeReason::kDeadlineMiss, &response);
  } else {
    ScoreLadder(*model, request.user, k, deadline_us, waited_us, &response);
  }
  response.score_us = stage_watch.ElapsedMicros();
  response.total_us = waited_us + handle_watch.ElapsedMicros();

  CountResponse(response);
  // CurrentTraceId() (not trace.id()): it reads 0 for a sampled-out
  // request, so every exemplar that lands in a bucket names a trace id
  // whose span tree actually exists in the flushed trace.
  const uint64_t exemplar_id = obs::CurrentTraceId();
  queue_hist_->Record(response.queue_us, exemplar_id);
  score_hist_->Record(response.score_us, exemplar_id);
  total_hist_->Record(response.total_us, exemplar_id);
  retry_budget_.RecordRequest();
  return response;
}

void RecommendServer::ScoreLadder(const ServingModel& model, size_t user,
                                  size_t k, double deadline_us,
                                  double spent_us,
                                  Recommendation* response) {
  DTREC_TRACE_SPAN("serve_score");
  const uint64_t generation = model.generation();
  const Stopwatch ladder_watch;

  // The score cache is one dependency: Allow() once per request covers
  // the lookup and (on a miss that reaches a fresh slate) the fill.
  // `cache_pending` tracks an Allow() not yet concluded by a Record*().
  bool cache_pending = cache_breaker_.Allow();
  if (!cache_pending) obs::TraceNote("breaker_cache_open");
  if (cache_pending) {
    std::vector<ScoredItem> slate;
    if (scorer_.CachedSlate(generation, user, k, &slate)) {
      cache_breaker_.RecordSuccess();
      response->rung = ServeRung::kCachedSlate;
      response->cache_hit = true;
      response->items = std::move(slate);
      cache_hits_->Increment();
      return;
    }
    cache_misses_->Increment();
  }

  // Fresh scoring pass, breaker-guarded, with at most one budgeted retry.
  bool scored = false;
  std::vector<ScoredItem> slate;
  for (int attempt = 0; attempt < 2 && !scored; ++attempt) {
    if (!scorer_breaker_.Allow()) {
      obs::TraceNote("breaker_scorer_open");
      break;
    }
    try {
      slate = scorer_.ScoreFresh(model, user, k);
      scored = true;
      scorer_breaker_.RecordSuccess();
    } catch (const failpoint::FailpointAbort&) {
      scorer_breaker_.RecordFailure();
      if (attempt > 0) break;
      // Retry only while the deadline still has room and the budget —
      // refilled by completed requests, so retries stay a bounded
      // fraction of traffic — grants a token.
      const bool in_deadline =
          deadline_us < 0 ||
          spent_us + ladder_watch.ElapsedMicros() < deadline_us;
      if (!in_deadline || !retry_budget_.TryAcquire()) {
        retry_denied_->Increment();
        break;
      }
      retries_->Increment();
    }
  }

  if (!scored) {
    // Scorer breaker open or the pass kept failing: popularity fallback.
    if (cache_pending) cache_breaker_.RecordSuccess();  // lookup was clean
    PopularitySlate(model, k, DegradeReason::kBreakerOpen, response);
    return;
  }

  response->rung = ServeRung::kFullTopK;
  if (cache_pending) {
    try {
      scorer_.StoreSlate(generation, user, slate);
      cache_breaker_.RecordSuccess();
    } catch (const failpoint::FailpointAbort&) {
      // Fill failed — the slate itself is still good; only the cache
      // dependency is charged.
      cache_breaker_.RecordFailure();
    }
  }
  response->items = std::move(slate);
}

void RecommendServer::PopularitySlate(const ServingModel& model, size_t k,
                                      DegradeReason reason,
                                      Recommendation* response) {
  DTREC_TRACE_SPAN("serve_degraded");
  response->rung = ServeRung::kPopularity;
  response->reason = reason;
  const auto& ranking = model.popularity_ranking();
  response->items.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    response->items.push_back({ranking[i], model.popularity(ranking[i])});
  }
}

void RecommendServer::CountResponse(const Recommendation& response) {
  requests_->Increment();
  // The rung/reason annotations land as zero-duration spans under the
  // request's TraceContext (CountResponse runs inside Handle), so the
  // exemplar a histogram hands back resolves to a span tree that *names*
  // the ladder outcome, not just its timings.
  switch (response.rung) {
    case ServeRung::kFullTopK:
      rung_full_->Increment();
      obs::TraceNote("rung_full");
      break;
    case ServeRung::kCachedSlate:
      rung_cached_->Increment();
      obs::TraceNote("rung_cached");
      break;
    case ServeRung::kPopularity:
      rung_popularity_->Increment();
      obs::TraceNote("rung_popularity");
      break;
    case ServeRung::kShed:
      rung_shed_->Increment();
      obs::TraceNote("rung_shed");
      break;
  }
  switch (response.reason) {
    case DegradeReason::kNone:
      break;
    case DegradeReason::kDeadlineMiss:
      deadline_miss_->Increment();
      obs::TraceNote("degrade_deadline_miss");
      break;
    case DegradeReason::kQueueShed:
      queue_shed_->Increment();
      obs::TraceNote("degrade_queue_shed");
      break;
    case DegradeReason::kBreakerOpen:
      breaker_open_->Increment();
      obs::TraceNote("degrade_breaker_open");
      break;
  }
}

ServerStats RecommendServer::Snapshot() const {
  ServerStats stats;
  stats.requests = requests_->Value();
  stats.rung_full = rung_full_->Value();
  stats.rung_cached = rung_cached_->Value();
  stats.rung_popularity = rung_popularity_->Value();
  stats.rung_shed = rung_shed_->Value();
  stats.deadline_miss = deadline_miss_->Value();
  stats.queue_shed = queue_shed_->Value();
  stats.breaker_open = breaker_open_->Value();
  stats.cache_hits = cache_hits_->Value();
  stats.cache_misses = cache_misses_->Value();
  stats.retries = retries_->Value();
  stats.retry_denied = retry_denied_->Value();
  stats.model_swaps = swaps_->Value();
  stats.generation = registry_->generation();
  stats.queue_us = queue_hist_->Summarize();
  stats.score_us = score_hist_->Summarize();
  stats.total_us = total_hist_->Summarize();
  return stats;
}

void RecommendServer::ResetStats() {
  requests_->Reset();
  rung_full_->Reset();
  rung_cached_->Reset();
  rung_popularity_->Reset();
  rung_shed_->Reset();
  deadline_miss_->Reset();
  queue_shed_->Reset();
  breaker_open_->Reset();
  cache_hits_->Reset();
  cache_misses_->Reset();
  retries_->Reset();
  retry_denied_->Reset();
  swaps_->Reset();
  queue_hist_->Reset();
  score_hist_->Reset();
  total_hist_->Reset();
}

}  // namespace dtrec::serve
