#include "serve/recommend_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dtrec::serve {

namespace {

obs::MetricsRegistry* OrGlobal(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? metrics : &obs::GlobalMetrics();
}

}  // namespace

RecommendServer::RecommendServer(const ModelRegistry* registry,
                                 ServerConfig config)
    : registry_(registry),
      config_(std::move(config)),
      scorer_(config_.cache),
      metrics_(OrGlobal(config_.metrics)),
      requests_(metrics_->GetCounter(config_.metrics_prefix + ".requests")),
      degraded_(metrics_->GetCounter(config_.metrics_prefix + ".degraded")),
      shed_(metrics_->GetCounter(config_.metrics_prefix + ".shed")),
      cache_hits_(
          metrics_->GetCounter(config_.metrics_prefix + ".cache_hits")),
      cache_misses_(
          metrics_->GetCounter(config_.metrics_prefix + ".cache_misses")),
      swaps_(metrics_->GetCounter(config_.metrics_prefix + ".model_swaps")),
      generation_(metrics_->GetGauge(config_.metrics_prefix + ".generation")),
      queue_hist_(
          metrics_->GetHistogram(config_.metrics_prefix + ".queue_us")),
      score_hist_(
          metrics_->GetHistogram(config_.metrics_prefix + ".score_us")),
      total_hist_(
          metrics_->GetHistogram(config_.metrics_prefix + ".total_us")),
      pool_(config_.num_threads, config_.max_queue) {
  DTREC_CHECK(registry != nullptr);
  // A fresh server owns its metric prefix and starts from zero — a prior
  // (dead) server with the same prefix must not leak counts into this
  // one's stats. Two live servers therefore need distinct prefixes.
  ResetStats();
  if (config_.stats_dump_period_s > 0.0) {
    dump_thread_ = std::thread([this] { StatsDumpLoop(); });
  }
}

RecommendServer::~RecommendServer() {
  if (dump_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dump_mu_);
      stop_dump_ = true;
    }
    dump_cv_.notify_all();
    dump_thread_.join();
  }
  pool_.Shutdown();
}

void RecommendServer::StatsDumpLoop() {
  const auto period = std::chrono::duration<double>(
      config_.stats_dump_period_s);
  std::unique_lock<std::mutex> lock(dump_mu_);
  while (!stop_dump_) {
    if (dump_cv_.wait_for(lock, period, [this] { return stop_dump_; })) {
      break;
    }
    // Snapshot() touches only registry metrics and the model registry —
    // safe without dump_mu_, but holding it is fine (nothing else blocks
    // on it except shutdown).
    DTREC_LOG(INFO) << "[" << config_.metrics_prefix << "] "
                    << Snapshot().Summary();
  }
}

std::future<Recommendation> RecommendServer::Submit(
    const RecommendRequest& request) {
  auto task = std::make_shared<std::packaged_task<Recommendation()>>(
      [this, request, submitted = Stopwatch()] {
        return Handle(request, submitted.ElapsedMicros());
      });
  std::future<Recommendation> future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    // Backlog at max_queue: shed on the caller's thread with the
    // precomputed popularity slate. Overload costs O(k) per refused
    // request instead of an ever-longer queue of doomed scoring passes.
    std::packaged_task<Recommendation()> shed_task([this, &request] {
      return Handle(request, /*waited_us=*/0.0, /*shed=*/true);
    });
    future = shed_task.get_future();
    shed_task();
  }
  return future;
}

Recommendation RecommendServer::Recommend(const RecommendRequest& request) {
  return Handle(request, /*waited_us=*/0.0);
}

Recommendation RecommendServer::Handle(const RecommendRequest& request,
                                       double waited_us, bool shed) {
  DTREC_TRACE_SPAN("serve_handle");
  const Stopwatch handle_watch;
  Recommendation response;
  response.queue_us = waited_us;

  std::shared_ptr<const ServingModel> model = registry_->Acquire();
  DTREC_CHECK(model != nullptr) << "no model published before serving";

  // Eager cache invalidation on swap. Correctness does not depend on
  // winning this race — cache entries are generation-checked — so a
  // compare_exchange miss against a concurrent observer is fine.
  uint64_t seen = seen_generation_.load(std::memory_order_acquire);
  const uint64_t generation = model->generation();
  if (seen != generation &&
      seen_generation_.compare_exchange_strong(seen, generation,
                                               std::memory_order_acq_rel)) {
    if (seen != 0) swaps_->Increment();
    generation_->Set(static_cast<double>(generation));
    scorer_.InvalidateAll();
  }
  response.generation = generation;

  const size_t k =
      std::min(request.k > 0 ? request.k : config_.default_k,
               model->num_items());
  const double deadline_ms = request.deadline_ms >= 0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;

  const Stopwatch stage_watch;
  if (shed || (deadline_ms >= 0 && waited_us >= deadline_ms * 1e3)) {
    // Budget burned in the queue: serve the precomputed popularity
    // ranking instead of burning more time on a full scoring pass.
    DTREC_TRACE_SPAN("serve_degraded");
    response.degraded = true;
    response.shed = shed;
    const auto& ranking = model->popularity_ranking();
    response.items.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      response.items.push_back(
          {ranking[i], model->popularity(ranking[i])});
    }
  } else {
    DTREC_TRACE_SPAN("serve_score");
    response.items = scorer_.TopK(*model, request.user, k,
                                  &response.cache_hit);
  }
  response.score_us = stage_watch.ElapsedMicros();
  response.total_us = waited_us + handle_watch.ElapsedMicros();

  requests_->Increment();
  if (response.degraded) {
    degraded_->Increment();
    if (response.shed) shed_->Increment();
  } else if (response.cache_hit) {
    cache_hits_->Increment();
  } else {
    cache_misses_->Increment();
  }
  queue_hist_->Record(response.queue_us);
  score_hist_->Record(response.score_us);
  total_hist_->Record(response.total_us);
  return response;
}

ServerStats RecommendServer::Snapshot() const {
  ServerStats stats;
  stats.requests = requests_->Value();
  stats.degraded = degraded_->Value();
  stats.shed = shed_->Value();
  stats.cache_hits = cache_hits_->Value();
  stats.cache_misses = cache_misses_->Value();
  stats.model_swaps = swaps_->Value();
  stats.generation = registry_->generation();
  stats.queue_us = queue_hist_->Summarize();
  stats.score_us = score_hist_->Summarize();
  stats.total_us = total_hist_->Summarize();
  return stats;
}

void RecommendServer::ResetStats() {
  requests_->Reset();
  degraded_->Reset();
  shed_->Reset();
  cache_hits_->Reset();
  cache_misses_->Reset();
  swaps_->Reset();
  queue_hist_->Reset();
  score_hist_->Reset();
  total_hist_->Reset();
}

}  // namespace dtrec::serve
