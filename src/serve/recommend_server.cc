#include "serve/recommend_server.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace dtrec::serve {

RecommendServer::RecommendServer(const ModelRegistry* registry,
                                 ServerConfig config)
    : registry_(registry),
      config_(config),
      scorer_(config.cache),
      pool_(config.num_threads, config.max_queue) {
  DTREC_CHECK(registry != nullptr);
}

RecommendServer::~RecommendServer() { pool_.Shutdown(); }

std::future<Recommendation> RecommendServer::Submit(
    const RecommendRequest& request) {
  auto task = std::make_shared<std::packaged_task<Recommendation()>>(
      [this, request, submitted = Stopwatch()] {
        return Handle(request, submitted.ElapsedMicros());
      });
  std::future<Recommendation> future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    // Backlog at max_queue: shed on the caller's thread with the
    // precomputed popularity slate. Overload costs O(k) per refused
    // request instead of an ever-longer queue of doomed scoring passes.
    std::packaged_task<Recommendation()> shed_task([this, &request] {
      return Handle(request, /*waited_us=*/0.0, /*shed=*/true);
    });
    future = shed_task.get_future();
    shed_task();
  }
  return future;
}

Recommendation RecommendServer::Recommend(const RecommendRequest& request) {
  return Handle(request, /*waited_us=*/0.0);
}

Recommendation RecommendServer::Handle(const RecommendRequest& request,
                                       double waited_us, bool shed) {
  const Stopwatch handle_watch;
  Recommendation response;
  response.queue_us = waited_us;

  std::shared_ptr<const ServingModel> model = registry_->Acquire();
  DTREC_CHECK(model != nullptr) << "no model published before serving";

  // Eager cache invalidation on swap. Correctness does not depend on
  // winning this race — cache entries are generation-checked — so a
  // compare_exchange miss against a concurrent observer is fine.
  uint64_t seen = seen_generation_.load(std::memory_order_acquire);
  const uint64_t generation = model->generation();
  if (seen != generation &&
      seen_generation_.compare_exchange_strong(seen, generation,
                                               std::memory_order_acq_rel)) {
    if (seen != 0) swaps_.fetch_add(1, std::memory_order_relaxed);
    scorer_.InvalidateAll();
  }
  response.generation = generation;

  const size_t k =
      std::min(request.k > 0 ? request.k : config_.default_k,
               model->num_items());
  const double deadline_ms = request.deadline_ms >= 0
                                 ? request.deadline_ms
                                 : config_.default_deadline_ms;

  const Stopwatch stage_watch;
  if (shed || (deadline_ms >= 0 && waited_us >= deadline_ms * 1e3)) {
    // Budget burned in the queue: serve the precomputed popularity
    // ranking instead of burning more time on a full scoring pass.
    response.degraded = true;
    response.shed = shed;
    const auto& ranking = model->popularity_ranking();
    response.items.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      response.items.push_back(
          {ranking[i], model->popularity(ranking[i])});
    }
  } else {
    response.items = scorer_.TopK(*model, request.user, k,
                                  &response.cache_hit);
  }
  response.score_us = stage_watch.ElapsedMicros();
  response.total_us = waited_us + handle_watch.ElapsedMicros();

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (response.degraded) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    if (response.shed) shed_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.cache_hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_hist_.Record(response.queue_us);
  score_hist_.Record(response.score_us);
  total_hist_.Record(response.total_us);
  return response;
}

ServerStats RecommendServer::Snapshot() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.model_swaps = swaps_.load(std::memory_order_relaxed);
  stats.generation = registry_->generation();
  stats.queue_us = queue_hist_.Summarize();
  stats.score_us = score_hist_.Summarize();
  stats.total_us = total_hist_.Summarize();
  return stats;
}

void RecommendServer::ResetStats() {
  requests_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  shed_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  swaps_.store(0, std::memory_order_relaxed);
  queue_hist_.Reset();
  score_hist_.Reset();
  total_hist_.Reset();
}

}  // namespace dtrec::serve
