#ifndef DTREC_SERVE_CIRCUIT_BREAKER_H_
#define DTREC_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace dtrec::serve {

/// Breaker tuning. The defaults are deliberately forgiving: a dependency
/// has to fail `failure_threshold` times *in a row* before the breaker
/// opens, so a healthy serve path never notices the breaker exists.
struct CircuitBreakerConfig {
  /// Consecutive failures that trip Closed → Open.
  int failure_threshold = 5;
  /// How long the breaker stays Open before the first half-open probe.
  double initial_backoff_ms = 100.0;
  /// Each failed probe multiplies the backoff (exponential), capped below.
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 10000.0;
  /// Successful probes needed in HalfOpen to close again (1 = classic).
  int probe_successes_to_close = 1;
};

/// Per-dependency circuit breaker with half-open probing and exponential
/// backoff.
///
///   Closed ──(threshold consecutive failures)──▶ Open
///   Open ──(backoff elapsed)──▶ HalfOpen   (exactly one probe in flight)
///   HalfOpen ──(probe ok)──▶ Closed        (backoff resets)
///   HalfOpen ──(probe fails)──▶ Open       (backoff doubles, capped)
///
/// Protocol: call Allow() before touching the dependency; when it returns
/// false, skip the dependency (the serving ladder falls to the next rung).
/// When it returns true, the call *must* be concluded with exactly one
/// RecordSuccess() or RecordFailure() — in HalfOpen that conclusion is
/// what resolves the probe.
///
/// All transitions happen under one mutex; the critical sections are a
/// few comparisons, far below the cost of the dependencies being guarded
/// (a scoring pass, a cache lookup, a model publish).
///
/// The clock is injectable (microseconds, monotonic) so tests drive the
/// backoff schedule deterministically instead of sleeping.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  using ClockFn = std::function<double()>;  ///< monotonic microseconds

  /// `name` keys the breaker's metrics in `metrics` (may be null for an
  /// unexported breaker): `<name>.state`, `<name>.open_transitions`,
  /// `<name>.failures`, `<name>.rejected`.
  CircuitBreaker(std::string name, CircuitBreakerConfig config,
                 obs::MetricsRegistry* metrics = nullptr,
                 ClockFn clock = ClockFn());

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when the guarded call may proceed. In Open, flips to HalfOpen
  /// once the backoff has elapsed and admits exactly one probe; further
  /// callers are rejected until that probe concludes.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  State state() const;

  /// Closed → Open transitions since construction (probe failures that
  /// re-open count too: every entry into Open increments).
  uint64_t open_transitions() const;
  /// RecordFailure() calls since construction.
  uint64_t failures() const;
  /// Allow() calls answered false since construction.
  uint64_t rejected() const;

  /// Back to Closed with zeroed failure count and initial backoff. For
  /// operators/tests; transition counters are preserved.
  void ForceClose();

  const std::string& name() const { return name_; }

 private:
  void TransitionToOpenLocked(double now_us) DTREC_REQUIRES(mu_);

  const std::string name_;
  const CircuitBreakerConfig config_;
  const ClockFn clock_;

  mutable std::mutex mu_;
  State state_ DTREC_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ DTREC_GUARDED_BY(mu_) = 0;
  int probe_successes_ DTREC_GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ DTREC_GUARDED_BY(mu_) = false;
  double backoff_ms_ DTREC_GUARDED_BY(mu_);
  double open_until_us_ DTREC_GUARDED_BY(mu_) = 0.0;
  uint64_t open_transitions_ DTREC_GUARDED_BY(mu_) = 0;
  uint64_t failures_ DTREC_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ DTREC_GUARDED_BY(mu_) = 0;

  // Registry-owned exports (null when unexported). state gauge: 0 closed,
  // 1 open, 2 half-open — matches the State enum values.
  obs::Gauge* const state_gauge_;
  obs::Counter* const open_transitions_counter_;
  obs::Counter* const failures_counter_;
  obs::Counter* const rejected_counter_;
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_CIRCUIT_BREAKER_H_
