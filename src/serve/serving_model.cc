#include "serve/serving_model.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "tensor/kernels.h"
#include "util/string_util.h"

namespace dtrec::serve {
namespace {

std::vector<uint32_t> RankByPopularity(const std::vector<double>& pop) {
  std::vector<uint32_t> ranking(pop.size());
  std::iota(ranking.begin(), ranking.end(), 0u);
  std::stable_sort(ranking.begin(), ranking.end(),
                   [&pop](uint32_t a, uint32_t b) {
                     if (pop[a] != pop[b]) return pop[a] > pop[b];
                     return a < b;
                   });
  return ranking;
}

}  // namespace

Result<ServingModel> ServingModel::FromFactors(
    Matrix user_factors, Matrix item_factors, Matrix user_bias,
    Matrix item_bias, std::vector<double> item_popularity) {
  if (user_factors.empty() || item_factors.empty()) {
    return Status::InvalidArgument("serving model needs non-empty factors");
  }
  if (user_factors.cols() != item_factors.cols()) {
    return Status::InvalidArgument(StrFormat(
        "factor dim mismatch: users %zu vs items %zu", user_factors.cols(),
        item_factors.cols()));
  }
  if (!user_bias.empty() && (user_bias.rows() != user_factors.rows() ||
                             user_bias.cols() != 1)) {
    return Status::InvalidArgument("user bias must be |U|x1");
  }
  if (!item_bias.empty() && (item_bias.rows() != item_factors.rows() ||
                             item_bias.cols() != 1)) {
    return Status::InvalidArgument("item bias must be |I|x1");
  }
  if (item_popularity.size() != item_factors.rows()) {
    return Status::InvalidArgument(StrFormat(
        "popularity has %zu entries for %zu items", item_popularity.size(),
        item_factors.rows()));
  }
  ServingModel model;
  model.user_factors_ = std::move(user_factors);
  model.item_factors_ = std::move(item_factors);
  model.user_bias_ = std::move(user_bias);
  model.item_bias_ = std::move(item_bias);
  model.popularity_ranking_ = RankByPopularity(item_popularity);
  model.item_popularity_ = std::move(item_popularity);
  return model;
}

Result<ServingModel> ServingModel::FromDisentangled(
    const DisentangledEmbeddings& emb, std::vector<double> item_popularity) {
  // Serving uses only the rating head: the primary blocks and (when
  // enabled) the bias terms. The auxiliary blocks and propensity head are
  // training-time machinery.
  return FromFactors(emb.p_primary, emb.q_primary, emb.user_bias,
                     emb.item_bias, std::move(item_popularity));
}

Result<ServingModel> ServingModel::FromMf(const MfModel& model,
                                          std::vector<double> item_popularity) {
  Matrix user_bias, item_bias;
  // Params() order is P, Q[, bu, bi]; biases only when configured.
  const std::vector<const Matrix*> params = model.Params();
  if (params.size() == 4) {
    user_bias = *params[2];
    item_bias = *params[3];
  }
  return FromFactors(model.p(), model.q(), std::move(user_bias),
                     std::move(item_bias), std::move(item_popularity));
}

double ServingModel::Score(size_t user, size_t item) const {
  DTREC_DCHECK(user < num_users() && item < num_items());
  const double* pu = user_factors_.row(user);
  const double* qi = item_factors_.row(item);
  double dot = 0.0;
  for (size_t k = 0; k < user_factors_.cols(); ++k) dot += pu[k] * qi[k];
  if (!user_bias_.empty()) dot += user_bias_(user, 0);
  if (!item_bias_.empty()) dot += item_bias_(item, 0);
  return dot;
}

void ServingModel::ScoreAllItems(size_t user,
                                 std::vector<double>* out) const {
  DTREC_DCHECK(user < num_users());
  const size_t n = num_items();
  const size_t d = dim();
  out->resize(n);
  const double* pu = user_factors_.row(user);
  const double ub = user_bias_.empty() ? 0.0 : user_bias_(user, 0);
  double* scores = out->data();
  // Batched row-dot from the shared kernel layer: the user vector (ldb=0
  // broadcast) against every item row, four rows per pass.
  kernels::BatchedRowDot(n, d, item_factors_.data(), d, pu, 0, scores);
  if (ub != 0.0) {
    for (size_t i = 0; i < n; ++i) scores[i] += ub;
  }
  if (!item_bias_.empty()) {
    for (size_t i = 0; i < n; ++i) scores[i] += item_bias_(i, 0);
  }
}

}  // namespace dtrec::serve
