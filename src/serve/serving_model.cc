#include "serve/serving_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "tensor/kernels.h"
#include "util/string_util.h"

namespace dtrec::serve {
namespace {

std::vector<uint32_t> RankByPopularity(const std::vector<double>& pop) {
  std::vector<uint32_t> ranking(pop.size());
  std::iota(ranking.begin(), ranking.end(), 0u);
  std::stable_sort(ranking.begin(), ranking.end(),
                   [&pop](uint32_t a, uint32_t b) {
                     if (pop[a] != pop[b]) return pop[a] > pop[b];
                     return a < b;
                   });
  return ranking;
}

/// ‖row‖₂ of a length-d row.
double RowNorm(const double* row, size_t d) {
  double sq = 0.0;
  for (size_t p = 0; p < d; ++p) sq += row[p] * row[p];
  return std::sqrt(sq);
}

int8_t ClampToInt8(long v) {
  return static_cast<int8_t>(std::min<long>(127, std::max<long>(-127, v)));
}

}  // namespace

Status ServingModel::ValidateCatalogueSize(size_t num_items) {
  if (num_items > kMaxCatalogueItems) {
    return Status::InvalidArgument(StrFormat(
        "catalogue of %zu items exceeds the uint32 slate-id ceiling (%zu); "
        "shard the catalogue instead of letting item ids wrap",
        num_items, kMaxCatalogueItems));
  }
  return Status::OK();
}

Result<ServingModel> ServingModel::FromFactors(
    Matrix user_factors, Matrix item_factors, Matrix user_bias,
    Matrix item_bias, std::vector<double> item_popularity) {
  if (user_factors.empty() || item_factors.empty()) {
    return Status::InvalidArgument("serving model needs non-empty factors");
  }
  if (user_factors.cols() != item_factors.cols()) {
    return Status::InvalidArgument(StrFormat(
        "factor dim mismatch: users %zu vs items %zu", user_factors.cols(),
        item_factors.cols()));
  }
  if (!user_bias.empty() && (user_bias.rows() != user_factors.rows() ||
                             user_bias.cols() != 1)) {
    return Status::InvalidArgument("user bias must be |U|x1");
  }
  if (!item_bias.empty() && (item_bias.rows() != item_factors.rows() ||
                             item_bias.cols() != 1)) {
    return Status::InvalidArgument("item bias must be |I|x1");
  }
  if (item_popularity.size() != item_factors.rows()) {
    return Status::InvalidArgument(StrFormat(
        "popularity has %zu entries for %zu items", item_popularity.size(),
        item_factors.rows()));
  }
  DTREC_RETURN_IF_ERROR(ValidateCatalogueSize(item_factors.rows()));
  ServingModel model;
  model.user_factors_ = std::move(user_factors);
  model.item_factors_ = std::move(item_factors);
  model.user_bias_ = std::move(user_bias);
  model.item_bias_ = std::move(item_bias);
  model.popularity_ranking_ = RankByPopularity(item_popularity);
  model.item_popularity_ = std::move(item_popularity);
  model.BuildSweepIndex();
  return model;
}

Result<ServingModel> ServingModel::FromDisentangled(
    const DisentangledEmbeddings& emb, std::vector<double> item_popularity) {
  // Serving uses only the rating head: the primary blocks and (when
  // enabled) the bias terms. The auxiliary blocks and propensity head are
  // training-time machinery.
  return FromFactors(emb.p_primary, emb.q_primary, emb.user_bias,
                     emb.item_bias, std::move(item_popularity));
}

Result<ServingModel> ServingModel::FromMf(const MfModel& model,
                                          std::vector<double> item_popularity) {
  Matrix user_bias, item_bias;
  // Params() order is P, Q[, bu, bi]; biases only when configured.
  const std::vector<const Matrix*> params = model.Params();
  if (params.size() == 4) {
    user_bias = *params[2];
    item_bias = *params[3];
  }
  return FromFactors(model.p(), model.q(), std::move(user_bias),
                     std::move(item_bias), std::move(item_popularity));
}

double ServingModel::Score(size_t user, size_t item) const {
  DTREC_DCHECK(user < num_users() && item < num_items());
  const double* pu = user_factors_.row(user);
  const double* qi = item_factors_.row(item);
  double dot = 0.0;
  for (size_t k = 0; k < user_factors_.cols(); ++k) dot += pu[k] * qi[k];
  if (!user_bias_.empty()) dot += user_bias_(user, 0);
  if (!item_bias_.empty()) dot += item_bias_(item, 0);
  return dot;
}

void ServingModel::ScoreAllItems(size_t user,
                                 std::vector<double>* out) const {
  out->resize(num_items());
  ScoreItemRange(user, 0, num_items(), out->data());
}

void ServingModel::ScoreItemRange(size_t user, size_t begin, size_t end,
                                  double* out) const {
  DTREC_DCHECK(user < num_users() && begin <= end && end <= num_items());
  const size_t d = dim();
  const size_t len = end - begin;
  const double* pu = user_factors_.row(user);
  // Batched row-dot from the shared kernel layer: the user vector (ldb=0
  // broadcast) against the item rows of the shard, four rows per pass.
  kernels::BatchedRowDot(len, d, item_factors_.row(begin), d, pu, 0, out);
  // Both biases fold into one fused pass (ub + bi per item); the common
  // no-bias case never re-touches the score buffer at all.
  const double ub = user_bias_.empty() ? 0.0 : user_bias_(user, 0);
  if (!item_bias_.empty()) {
    for (size_t i = begin; i < end; ++i) {
      out[i - begin] += ub + item_bias_(i, 0);
    }
  } else if (ub != 0.0) {
    for (size_t i = 0; i < len; ++i) out[i] += ub;
  }
}

double ServingModel::SweepScore(size_t user, size_t item) const {
  DTREC_DCHECK(user < num_users() && item < num_items());
  const size_t d = dim();
  const double* pu = user_factors_.row(user);
  // Reproduce the accumulation the item gets inside ScoreItemRange by
  // running the *same* kernel over the item's own group: body lanes of
  // BatchedRowDot depend only on their own row, so a 4-row call over the
  // item's aligned group yields the identical bits (a re-derived scalar
  // copy would not survive the compiler's per-loop FMA/vectorization
  // choices); a 1-row call lands on the ragged-tail path.
  double dot;
  if (item < sweep_tail_begin_) {
    const size_t group = item & ~size_t{3};
    double lanes[4];
    kernels::BatchedRowDot(4, d, item_factors_.row(group), d, pu, 0, lanes);
    dot = lanes[item - group];
  } else {
    kernels::BatchedRowDot(1, d, item_factors_.row(item), d, pu, 0, &dot);
  }
  // Mirror the fused bias pass exactly, including its rounding order
  // dot + (ub + bi) and its skip conditions.
  if (!item_bias_.empty()) {
    return dot + (user_bias_or_zero(user) + item_bias_(item, 0));
  }
  const double ub = user_bias_or_zero(user);
  if (ub != 0.0) return dot + ub;
  return dot;
}

void ServingModel::ScoreNormOrderedRange(size_t user, size_t begin,
                                         size_t count, double* out) const {
  DTREC_DCHECK(user < num_users() && begin % 4 == 0 &&
               begin <= num_items());
  count = std::min(count, num_items() - begin);
  if (count == 0) return;
  const size_t d = dim();
  const double* pu = user_factors_.row(user);
  // The permuted table is padded to a multiple of 4 rows, so rounding the
  // window up keeps every real item in a body lane of BatchedRowDot —
  // the same lane arithmetic ScoreItemRange gives body items. Pad lanes
  // score the zero row and are simply not emitted.
  const size_t padded = (count + 3) & ~size_t{3};
  kernels::BatchedRowDot(padded, d, norm_sorted_factors_.row(begin), d, pu,
                         0, out);
  const double ub = user_bias_or_zero(user);
  for (size_t t = 0; t < count; ++t) {
    const uint32_t item = norm_order_[begin + t];
    if (item >= sweep_tail_begin_) {
      // Dense scores this item in tail order; re-run it down that path.
      out[t] = SweepScore(user, item);
    } else if (!item_bias_.empty()) {
      out[t] += ub + item_bias_(item, 0);
    } else if (ub != 0.0) {
      out[t] += ub;
    }
  }
}

void ServingModel::BuildSweepIndex() {
  const size_t n = num_items();
  const size_t d = dim();
  sweep_tail_begin_ = n - n % 4;

  user_norms_.resize(num_users());
  for (size_t u = 0; u < num_users(); ++u) {
    user_norms_[u] = RowNorm(user_factors_.row(u), d);
  }
  item_norms_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    item_norms_[i] = RowNorm(item_factors_.row(i), d);
  }

  // Sweep order for norm-bound pruning: ‖q‖ descending, ties by id so the
  // order (and therefore the pruned sweep) is deterministic.
  norm_order_.resize(n);
  std::iota(norm_order_.begin(), norm_order_.end(), 0u);
  std::stable_sort(norm_order_.begin(), norm_order_.end(),
                   [this](uint32_t a, uint32_t b) {
                     if (item_norms_[a] != item_norms_[b]) {
                       return item_norms_[a] > item_norms_[b];
                     }
                     return a < b;
                   });
  // Suffix max of item bias over the sweep order: position j bounds the
  // bias of every item the sweep has not reached yet.
  norm_order_bias_max_.resize(n);
  double running = 0.0;
  for (size_t j = n; j-- > 0;) {
    const double bi = item_bias_or_zero(norm_order_[j]);
    running = (j + 1 == n) ? bi : std::max(running, bi);
    norm_order_bias_max_[j] = running;
  }

  // Contiguous, group-aligned copy of the factors in sweep order (padded
  // with zero rows to a multiple of 4) so ScoreNormOrderedRange can hand
  // whole chunks to BatchedRowDot instead of gathering scattered rows.
  norm_sorted_factors_ = Matrix((n + 3) & ~size_t{3}, d);
  for (size_t j = 0; j < n; ++j) {
    const double* src = item_factors_.row(norm_order_[j]);
    std::copy(src, src + d, norm_sorted_factors_.row(j));
  }

  // Per-item affine int8 quantization: v ≈ scale·(q − zp). The zero point
  // is chosen so the row's [lo, hi] range maps onto [−127, 127]; constant
  // rows fall back to a symmetric encoding. zp is kept as int32 (it only
  // appears in the dequantized-dot correction term, never as a stored
  // lane), so rows centered far from zero still encode exactly.
  quantized_items_.resize(n * d);
  item_scales_.resize(n);
  item_zero_points_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double* q = item_factors_.row(i);
    double lo = q[0], hi = q[0];
    for (size_t p = 1; p < d; ++p) {
      lo = std::min(lo, q[p]);
      hi = std::max(hi, q[p]);
    }
    double scale;
    long zp;
    if (hi - lo > 1e-12) {
      scale = (hi - lo) / 254.0;
      zp = -127 - std::lround(lo / scale);
    } else {
      const double amax = std::max(std::abs(lo), std::abs(hi));
      scale = amax > 0.0 ? amax / 127.0 : 1.0;
      zp = 0;
    }
    item_scales_[i] = scale;
    item_zero_points_[i] = static_cast<int32_t>(zp);
    int8_t* out = quantized_items_.data() + i * d;
    for (size_t p = 0; p < d; ++p) {
      out[p] = ClampToInt8(std::lround(q[p] / scale) + zp);
    }
  }
}

void ServingModel::QuantizeUserVector(size_t user, int8_t* out, double* scale,
                                      int32_t* sum) const {
  DTREC_DCHECK(user < num_users());
  const size_t d = dim();
  const double* pu = user_factors_.row(user);
  double amax = 0.0;
  for (size_t p = 0; p < d; ++p) amax = std::max(amax, std::abs(pu[p]));
  const double s = amax > 0.0 ? amax / 127.0 : 1.0;
  int32_t total = 0;
  for (size_t p = 0; p < d; ++p) {
    const int8_t q = ClampToInt8(std::lround(pu[p] / s));
    out[p] = q;
    total += q;
  }
  *scale = s;
  *sum = total;
}

}  // namespace dtrec::serve
