#ifndef DTREC_SERVE_ADMISSION_CONTROLLER_H_
#define DTREC_SERVE_ADMISSION_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace dtrec::serve {

/// Front-door admission knobs. Both mechanisms default to "off" so an
/// unconfigured server behaves exactly as before this layer existed.
struct AdmissionConfig {
  /// Sustained admission rate in requests/second; 0 disables the token
  /// bucket (every request passes the rate check).
  double rate_per_s = 0.0;
  /// Token-bucket capacity: how large a burst is absorbed before rate
  /// rejections start. 0 → one second's worth of tokens (rate_per_s).
  double burst = 0.0;
  /// Reject once this many requests already wait in the worker queue;
  /// 0 disables the depth check.
  size_t max_queue_depth = 0;
};

/// Token-bucket + queue-depth admission controller.
///
/// Sits in front of RecommendServer::Submit(): a request is admitted only
/// if (a) the token bucket has a token — bounding the sustained offered
/// rate the workers ever see — and (b) the instantaneous worker-queue
/// depth is below the cap — bounding queueing delay even when the rate
/// limiter's burst allowance lets a spike through. A rejected request is
/// shed at O(1) cost; the queue behind the controller stays short enough
/// that admitted requests meet their deadlines, which is the entire point:
/// under 2× overload, serve 1× well and shed 1× fast, instead of serving
/// 2× badly.
///
/// The clock is injectable (monotonic microseconds) so tests drive refill
/// deterministically. Decisions take one mutex; the critical section is a
/// handful of arithmetic ops, far below the cost of the scoring pass each
/// admitted request triggers.
class AdmissionController {
 public:
  enum class Decision {
    kAdmit = 0,
    kRejectRate = 1,   ///< token bucket empty: sustained rate exceeded
    kRejectDepth = 2,  ///< worker queue at max_queue_depth
  };

  using ClockFn = std::function<double()>;  ///< monotonic microseconds

  /// `metrics`/`prefix` key the exported counters (`<prefix>.admitted`,
  /// `<prefix>.rejected_rate`, `<prefix>.rejected_depth`); metrics may be
  /// null for an unexported controller.
  explicit AdmissionController(AdmissionConfig config,
                               obs::MetricsRegistry* metrics = nullptr,
                               const std::string& prefix = "admission",
                               ClockFn clock = ClockFn());

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// One admission decision for a request arriving now, given the current
  /// worker-queue depth. Depth is checked first: a full queue rejects
  /// without consuming a token (the token would be wasted on a request we
  /// cannot serve anyway).
  Decision TryAdmit(size_t queue_depth);

  uint64_t admitted() const;
  uint64_t rejected_rate() const;
  uint64_t rejected_depth() const;

  /// Tokens currently in the bucket (after refilling to now) — for tests
  /// and monitoring.
  double tokens() const;

 private:
  void RefillLocked(double now_us) DTREC_REQUIRES(mu_);

  const AdmissionConfig config_;
  const double capacity_;  // resolved burst capacity
  const ClockFn clock_;

  mutable std::mutex mu_;
  double tokens_ DTREC_GUARDED_BY(mu_);
  double last_refill_us_ DTREC_GUARDED_BY(mu_) = 0.0;
  uint64_t admitted_ DTREC_GUARDED_BY(mu_) = 0;
  uint64_t rejected_rate_ DTREC_GUARDED_BY(mu_) = 0;
  uint64_t rejected_depth_ DTREC_GUARDED_BY(mu_) = 0;

  // Registry-owned exports (null when unexported).
  obs::Counter* const admitted_counter_;
  obs::Counter* const rejected_rate_counter_;
  obs::Counter* const rejected_depth_counter_;
};

/// Deadline-aware retry budget: a token bucket refilled by completed
/// requests instead of by time.
///
/// Every finished request deposits `per_request_deposit` tokens (capped at
/// `burst`); a retry withdraws a whole token. Steady state therefore
/// bounds retries to a fixed *fraction* of traffic — during a full outage
/// the budget drains and retries stop amplifying load (the classic
/// retry-storm failure), while during isolated blips the saved-up burst
/// lets every affected request retry.
struct RetryBudgetConfig {
  double per_request_deposit = 0.1;  ///< ≈ retries allowed per request
  double burst = 10.0;               ///< max saved-up retry tokens
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetConfig config = {});

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// Called once per completed request: deposits the per-request share.
  void RecordRequest();

  /// True when a retry may run now (one token withdrawn).
  bool TryAcquire();

  double tokens() const;

 private:
  const RetryBudgetConfig config_;
  mutable std::mutex mu_;
  double tokens_ DTREC_GUARDED_BY(mu_);
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_ADMISSION_CONTROLLER_H_
