#include "serve/model_registry.h"

#include <utility>

#include "core/checkpoint.h"
#include "util/random.h"

namespace dtrec::serve {

uint64_t ModelRegistry::Publish(ServingModel model) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t generation = generation_.load(std::memory_order_relaxed) + 1;
  model.set_generation(generation);
  current_ = std::make_shared<const ServingModel>(std::move(model));
  generation_.store(generation, std::memory_order_release);
  return generation;
}

std::shared_ptr<const ServingModel> ModelRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Status ModelRegistry::PublishDisentangledCheckpoint(
    const std::string& path, const DisentangledShape& shape,
    std::vector<double> item_popularity, uint64_t* generation_out) {
  if (shape.num_users == 0 || shape.num_items == 0 || shape.total_dim == 0) {
    return Status::InvalidArgument("checkpoint shape must be fully specified");
  }
  const size_t primary =
      shape.primary_dim > 0 ? shape.primary_dim : (3 * shape.total_dim) / 4;
  // The Create() initialization is overwritten wholesale by the load; the
  // Rng only satisfies the constructor contract.
  Rng scratch_rng(1);
  DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
      shape.num_users, shape.num_items, shape.total_dim, primary,
      /*init_scale=*/0.1, /*bias_init=*/0.0, &scratch_rng, shape.use_bias);
  DTREC_RETURN_IF_ERROR(LoadDisentangledEmbeddings(path, &emb));
  auto model =
      ServingModel::FromDisentangled(emb, std::move(item_popularity));
  if (!model.ok()) return model.status();
  const uint64_t generation = Publish(std::move(model).value());
  if (generation_out != nullptr) *generation_out = generation;
  return Status::OK();
}

}  // namespace dtrec::serve
