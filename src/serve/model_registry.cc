#include "serve/model_registry.h"

#include <cmath>
#include <utility>

#include "core/checkpoint.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dtrec::serve {

namespace {

/// The probe body lives in its own Status-returning function so the
/// `serve/swap` failpoint can inject an error ahead of the real checks.
Status ProbeCandidate(const ServingModel& model) {
  DTREC_FAILPOINT_STATUS("serve/swap");
  return ModelRegistry::SanityProbe(model);
}

}  // namespace

ModelRegistry::ModelRegistry(obs::MetricsRegistry* metrics,
                             const std::string& metrics_prefix,
                             CircuitBreakerConfig breaker_config,
                             CircuitBreaker::ClockFn breaker_clock)
    : swap_breaker_(metrics_prefix + ".breaker.swap", breaker_config, metrics,
                    std::move(breaker_clock)) {}

Status ModelRegistry::SanityProbe(const ServingModel& model) {
  if (model.num_users() == 0 || model.num_items() == 0) {
    return Status::InvalidArgument("candidate model has an empty catalogue");
  }
  if (model.popularity_ranking().size() != model.num_items()) {
    return Status::InvalidArgument(
        "candidate popularity ranking does not cover the catalogue");
  }
  // Canary scoring: a model whose head produces NaN/Inf anywhere tends to
  // produce it everywhere (a NaN parameter poisons every dot product it
  // touches), so a handful of corner probes catches the real failure mode
  // — a checkpoint of a diverged trainer — at O(canary·dim) cost.
  const size_t canary_users = std::min<size_t>(model.num_users(), 4);
  const size_t canary_items = std::min<size_t>(model.num_items(), 16);
  for (size_t u = 0; u < canary_users; ++u) {
    for (size_t i = 0; i < canary_items; ++i) {
      const double score = model.Score(u, i);
      if (!std::isfinite(score)) {
        return Status::InvalidArgument(StrFormat(
            "candidate scores non-finite value at canary (%zu, %zu)", u, i));
      }
    }
  }
  for (size_t r = 0; r < canary_items; ++r) {
    if (!std::isfinite(model.popularity(model.popularity_ranking()[r]))) {
      return Status::InvalidArgument(
          "candidate popularity prior is non-finite");
    }
  }
  return Status::OK();
}

Status ModelRegistry::TryPublish(ServingModel model,
                                 uint64_t* generation_out) {
  if (!swap_breaker_.Allow()) {
    return Status::FailedPrecondition(
        "swap breaker open: rejecting candidate publish");
  }
  Status probe;
  try {
    probe = ProbeCandidate(model);
  } catch (...) {
    // A simulated kill (failpoint abort) mid-probe still concludes the
    // breaker protocol before unwinding to the publisher's crash harness.
    swap_breaker_.RecordFailure();
    throw;
  }
  if (!probe.ok()) {
    swap_breaker_.RecordFailure();
    return probe;
  }
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = generation_.load(std::memory_order_relaxed) + 1;
    model.set_generation(generation);
    previous_ = std::move(current_);
    current_ = std::make_shared<const ServingModel>(std::move(model));
    generation_.store(generation, std::memory_order_release);
  }
  swap_breaker_.RecordSuccess();
  if (generation_out != nullptr) *generation_out = generation;
  return Status::OK();
}

uint64_t ModelRegistry::Publish(ServingModel model) {
  uint64_t generation = 0;
  const Status st = TryPublish(std::move(model), &generation);
  DTREC_CHECK(st.ok()) << "Publish rejected: " << st;
  return generation;
}

Status ModelRegistry::RollbackToPrevious(uint64_t* generation_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (previous_ == nullptr) {
    return Status::FailedPrecondition(
        "no previous generation to roll back to");
  }
  const uint64_t generation =
      generation_.load(std::memory_order_relaxed) + 1;
  ServingModel restored = *previous_;  // copy: previous_ stays pinnable
  restored.set_generation(generation);
  previous_ = std::move(current_);
  current_ = std::make_shared<const ServingModel>(std::move(restored));
  generation_.store(generation, std::memory_order_release);
  if (generation_out != nullptr) *generation_out = generation;
  return Status::OK();
}

std::shared_ptr<const ServingModel> ModelRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

Status ModelRegistry::PublishDisentangledCheckpoint(
    const std::string& path, const DisentangledShape& shape,
    std::vector<double> item_popularity, uint64_t* generation_out) {
  if (shape.num_users == 0 || shape.num_items == 0 || shape.total_dim == 0) {
    return Status::InvalidArgument("checkpoint shape must be fully specified");
  }
  const size_t primary =
      shape.primary_dim > 0 ? shape.primary_dim : (3 * shape.total_dim) / 4;
  // The Create() initialization is overwritten wholesale by the load; the
  // Rng only satisfies the constructor contract.
  Rng scratch_rng(1);
  DisentangledEmbeddings emb = DisentangledEmbeddings::Create(
      shape.num_users, shape.num_items, shape.total_dim, primary,
      /*init_scale=*/0.1, /*bias_init=*/0.0, &scratch_rng, shape.use_bias);
  DTREC_RETURN_IF_ERROR(LoadDisentangledEmbeddings(path, &emb));
  auto model =
      ServingModel::FromDisentangled(emb, std::move(item_popularity));
  if (!model.ok()) return model.status();
  return TryPublish(std::move(model).value(), generation_out);
}

}  // namespace dtrec::serve
