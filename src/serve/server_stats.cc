#include "serve/server_stats.h"

#include "util/string_util.h"

namespace dtrec::serve {

std::string ServerStats::Summary() const {
  return StrFormat(
      "requests=%llu degraded=%.1f%% shed=%llu cache_hit=%.1f%% swaps=%llu "
      "generation=%llu p50=%.0fus p99=%.0fus",
      static_cast<unsigned long long>(requests), 100.0 * degraded_rate(),
      static_cast<unsigned long long>(shed), 100.0 * cache_hit_rate(),
      static_cast<unsigned long long>(model_swaps),
      static_cast<unsigned long long>(generation), total_us.p50_us,
      total_us.p99_us);
}

}  // namespace dtrec::serve
