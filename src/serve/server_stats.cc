#include "serve/server_stats.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace dtrec::serve {

LatencyHistogram::LatencyHistogram() { Reset(); }

double LatencyHistogram::BucketUpper(size_t i) {
  return std::pow(1.25, static_cast<double>(i));
}

size_t LatencyHistogram::BucketIndex(double micros) {
  if (micros <= 1.0) return 0;
  // i = ceil(log_1.25(µs)), clamped to the table.
  const size_t i =
      static_cast<size_t>(std::ceil(std::log(micros) / std::log(1.25)));
  return std::min(i, kNumBuckets - 1);
}

void LatencyHistogram::Record(double micros) {
  micros = std::max(micros, 0.0);
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ns = static_cast<uint64_t>(micros * 1e3);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Summary LatencyHistogram::Summarize() const {
  Summary summary;
  summary.count = count_.load(std::memory_order_relaxed);
  if (summary.count == 0) return summary;
  summary.mean_us =
      sum_ns_.load(std::memory_order_relaxed) / 1e3 / summary.count;
  summary.max_us = max_ns_.load(std::memory_order_relaxed) / 1e3;

  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  const auto percentile = [&](double p) {
    const double target = p * static_cast<double>(total);
    uint64_t cum = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (counts[i] == 0) continue;
      const double before = static_cast<double>(cum);
      cum += counts[i];
      if (static_cast<double>(cum) >= target) {
        const double lower = i == 0 ? 0.0 : BucketUpper(i - 1);
        const double upper = BucketUpper(i);
        const double frac =
            std::clamp((target - before) / counts[i], 0.0, 1.0);
        return lower + frac * (upper - lower);
      }
    }
    return BucketUpper(kNumBuckets - 1);
  };
  summary.p50_us = percentile(0.50);
  summary.p95_us = percentile(0.95);
  summary.p99_us = percentile(0.99);
  return summary;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

std::string ServerStats::Summary() const {
  return StrFormat(
      "requests=%llu degraded=%.1f%% shed=%llu cache_hit=%.1f%% swaps=%llu "
      "generation=%llu p50=%.0fus p99=%.0fus",
      static_cast<unsigned long long>(requests), 100.0 * degraded_rate(),
      static_cast<unsigned long long>(shed), 100.0 * cache_hit_rate(),
      static_cast<unsigned long long>(model_swaps),
      static_cast<unsigned long long>(generation), total_us.p50_us,
      total_us.p99_us);
}

}  // namespace dtrec::serve
