#include "serve/server_stats.h"

#include "util/string_util.h"

namespace dtrec::serve {

const char* ToString(ServeRung rung) {
  switch (rung) {
    case ServeRung::kFullTopK:
      return "full_topk";
    case ServeRung::kCachedSlate:
      return "cached_slate";
    case ServeRung::kPopularity:
      return "popularity";
    case ServeRung::kShed:
      return "shed";
  }
  return "unknown";
}

const char* ToString(DegradeReason reason) {
  switch (reason) {
    case DegradeReason::kNone:
      return "none";
    case DegradeReason::kDeadlineMiss:
      return "deadline_miss";
    case DegradeReason::kQueueShed:
      return "queue_shed";
    case DegradeReason::kBreakerOpen:
      return "breaker_open";
  }
  return "unknown";
}

std::string ServerStats::Summary() const {
  return StrFormat(
      "requests=%llu full=%llu cached=%llu pop=%llu shed=%llu "
      "deadline_miss=%llu queue_shed=%llu breaker_open=%llu "
      "cache_hit=%.1f%% retries=%llu swaps=%llu generation=%llu "
      "p50=%.0fus p99=%.0fus",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(rung_full),
      static_cast<unsigned long long>(rung_cached),
      static_cast<unsigned long long>(rung_popularity),
      static_cast<unsigned long long>(rung_shed),
      static_cast<unsigned long long>(deadline_miss),
      static_cast<unsigned long long>(queue_shed),
      static_cast<unsigned long long>(breaker_open),
      100.0 * cache_hit_rate(), static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(model_swaps),
      static_cast<unsigned long long>(generation), total_us.p50_us,
      total_us.p99_us);
}

}  // namespace dtrec::serve
