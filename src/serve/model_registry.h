#ifndef DTREC_SERVE_MODEL_REGISTRY_H_
#define DTREC_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/serving_model.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dtrec::serve {

/// Shape contract for restoring a DisentangledEmbeddings checkpoint (the
/// checkpoint format carries raw matrices, not shapes — see
/// core/checkpoint.h).
struct DisentangledShape {
  size_t num_users = 0;
  size_t num_items = 0;
  size_t total_dim = 0;    ///< K
  size_t primary_dim = 0;  ///< A; 0 → 3K/4, the trainer default
  bool use_bias = false;
};

/// Holds the current serving model and hot-swaps it without downtime.
///
/// Publish() stamps the next generation number onto the model and swaps
/// the registry's `shared_ptr<const ServingModel>` under a mutex;
/// Acquire() returns a copy of that pointer. A request therefore pins
/// whichever model was live when it started — swaps never tear a model
/// mid-request, and the old model is freed when its last in-flight
/// request drops the reference.
///
/// Generations start at 1 and increase monotonically; `generation()`
/// reads an atomic and is safe to poll from any thread (the serving
/// layer uses it to invalidate score caches after a swap).
class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes `model` as the new serving model, assigning it the next
  /// generation; returns that generation.
  uint64_t Publish(ServingModel model);

  /// The current model, or nullptr before the first Publish. The returned
  /// pointer stays valid (and the model immutable) for as long as the
  /// caller holds it, across any number of subsequent swaps.
  std::shared_ptr<const ServingModel> Acquire() const;

  /// Generation of the latest published model; 0 before the first.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Restores a DisentangledEmbeddings checkpoint from `path` (shapes per
  /// `shape`), builds its serving snapshot, and publishes it. This is the
  /// hot-reload path a trainer triggers after writing a new checkpoint.
  Status PublishDisentangledCheckpoint(const std::string& path,
                                       const DisentangledShape& shape,
                                       std::vector<double> item_popularity,
                                       uint64_t* generation_out = nullptr);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServingModel> current_ DTREC_GUARDED_BY(mu_);
  std::atomic<uint64_t> generation_{0};  // lock-free readers via generation()
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_MODEL_REGISTRY_H_
