#ifndef DTREC_SERVE_MODEL_REGISTRY_H_
#define DTREC_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/circuit_breaker.h"
#include "serve/serving_model.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dtrec::serve {

/// Shape contract for restoring a DisentangledEmbeddings checkpoint (the
/// checkpoint format carries raw matrices, not shapes — see
/// core/checkpoint.h).
struct DisentangledShape {
  size_t num_users = 0;
  size_t num_items = 0;
  size_t total_dim = 0;    ///< K
  size_t primary_dim = 0;  ///< A; 0 → 3K/4, the trainer default
  bool use_bias = false;
};

/// Holds the current serving model and hot-swaps it without downtime.
///
/// TryPublish() sanity-probes the candidate (finite scores on canary
/// users, a popularity ranking covering the catalogue) and *rejects* it —
/// keeping the live model serving — instead of publishing a model that
/// would NaN every slate. Accepted candidates are stamped with the next
/// generation number and swapped in under a mutex; Acquire() returns a
/// copy of the current `shared_ptr<const ServingModel>`. A request
/// therefore pins whichever model was live when it started — swaps never
/// tear a model mid-request, and the old model is freed when its last
/// in-flight request drops the reference.
///
/// The publish path is guarded by a circuit breaker (`swap_breaker()`):
/// repeated rejected candidates (a trainer gone bad, a corrupted
/// checkpoint feed) open the breaker and later publish attempts fail fast
/// without even probing, until a half-open probe publish succeeds. The
/// previous generation is retained, so an operator (or a shadow-eval
/// gate) can RollbackToPrevious() — republishing the prior model under a
/// *fresh* generation so score caches invalidate normally.
///
/// Generations start at 1 and increase monotonically; `generation()`
/// reads an atomic and is safe to poll from any thread (the serving
/// layer uses it to invalidate score caches after a swap).
class ModelRegistry {
 public:
  /// `metrics` (nullable) exports the swap-breaker state under
  /// `<metrics_prefix>.breaker.swap.*`; `breaker_clock` is injectable for
  /// deterministic backoff tests.
  explicit ModelRegistry(obs::MetricsRegistry* metrics = nullptr,
                         const std::string& metrics_prefix = "registry",
                         CircuitBreakerConfig breaker_config = {},
                         CircuitBreaker::ClockFn breaker_clock =
                             CircuitBreaker::ClockFn());

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Probes `model` and, on a finite-score bill of health, publishes it as
  /// the new serving model under the next generation. On a failed probe
  /// (or an open swap breaker) the registry is untouched: the previous
  /// generation keeps serving. Failpoint site `serve/swap` can inject
  /// probe failures.
  Status TryPublish(ServingModel model, uint64_t* generation_out = nullptr);

  /// Publishes `model`, DTREC_CHECK-ing that the probe passed; returns the
  /// assigned generation. The convenience path for trusted callers (tests,
  /// benches) whose models are well-formed by construction.
  uint64_t Publish(ServingModel model);

  /// Republishes the generation that was live before the last successful
  /// publish, under a fresh generation number (so caches invalidate
  /// normally). FailedPrecondition when no previous generation exists.
  /// Bypasses the probe and the breaker: the previous model already
  /// passed. Consecutive rollbacks toggle between the last two models.
  Status RollbackToPrevious(uint64_t* generation_out = nullptr);

  /// The current model, or nullptr before the first Publish. The returned
  /// pointer stays valid (and the model immutable) for as long as the
  /// caller holds it, across any number of subsequent swaps.
  std::shared_ptr<const ServingModel> Acquire() const;

  /// Generation of the latest published model; 0 before the first.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// The cheap pre-publish health check: non-empty factors, a popularity
  /// ranking covering the catalogue, and finite scores for a handful of
  /// canary (user, item) pairs. Exposed for tests and for publishers that
  /// want to pre-screen before shipping a checkpoint.
  static Status SanityProbe(const ServingModel& model);

  /// Breaker over the publish path (open = publishes fail fast).
  CircuitBreaker& swap_breaker() { return swap_breaker_; }
  const CircuitBreaker& swap_breaker() const { return swap_breaker_; }

  /// Restores a DisentangledEmbeddings checkpoint from `path` (shapes per
  /// `shape`), builds its serving snapshot, and publishes it through
  /// TryPublish — a corrupt or NaN checkpoint is rejected and the live
  /// model keeps serving. This is the hot-reload path a trainer triggers
  /// after writing a new checkpoint.
  Status PublishDisentangledCheckpoint(const std::string& path,
                                       const DisentangledShape& shape,
                                       std::vector<double> item_popularity,
                                       uint64_t* generation_out = nullptr);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServingModel> current_ DTREC_GUARDED_BY(mu_);
  std::shared_ptr<const ServingModel> previous_ DTREC_GUARDED_BY(mu_);
  std::atomic<uint64_t> generation_{0};  // lock-free readers via generation()
  CircuitBreaker swap_breaker_;
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_MODEL_REGISTRY_H_
