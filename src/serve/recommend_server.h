#ifndef DTREC_SERVE_RECOMMEND_SERVER_H_
#define DTREC_SERVE_RECOMMEND_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "serve/model_registry.h"
#include "serve/server_stats.h"
#include "serve/topk_scorer.h"
#include "util/thread_pool.h"

namespace dtrec::serve {

struct ServerConfig {
  size_t num_threads = 4;
  size_t default_k = 10;
  /// Backlog cap for Submit(): once this many requests wait in the pool
  /// queue, new submissions are *shed* — answered immediately on the
  /// calling thread with the degraded popularity slate instead of joining
  /// a queue they would only time out of. Bounds worst-case memory and
  /// tail latency under overload. 0 = unbounded (never shed).
  size_t max_queue = 0;
  /// Per-request latency budget (submit → response). A request whose
  /// budget is already spent when a worker picks it up is answered with
  /// the degraded popularity slate instead of a full scoring pass.
  /// 0 means "already expired" (every pooled request degrades —
  /// deterministic, used in tests); < 0 disables the deadline.
  double default_deadline_ms = 50.0;
  ScoreCacheConfig cache;  ///< cache.capacity = 0 disables the score cache
};

struct RecommendRequest {
  size_t user = 0;
  size_t k = 0;             ///< 0 → ServerConfig::default_k
  double deadline_ms = -1;  ///< < 0 → ServerConfig::default_deadline_ms
};

struct Recommendation {
  std::vector<ScoredItem> items;  ///< best-first slate
  bool degraded = false;   ///< popularity fallback (deadline or shed)
  bool shed = false;       ///< refused by the full queue (implies degraded)
  bool cache_hit = false;
  uint64_t generation = 0;  ///< model generation that produced the slate
  double queue_us = 0.0;
  double score_us = 0.0;
  double total_us = 0.0;
};

/// Front door of the serving subsystem.
///
///   registry ──Acquire()──▶ ServingModel (pinned per request)
///        │                        │
///   RecommendServer ──▶ ThreadPool workers ──▶ TopKScorer (+ LRU cache)
///        │                        │
///        └──── ServerStats ◀── latency histograms / counters
///
/// Submit() enqueues onto the pool and returns a future; Recommend() is
/// the synchronous in-thread path (used by the workers themselves, and
/// handy for tests/examples). Every request pins the registry's current
/// model via shared_ptr, so hot swaps are torn-model-free by
/// construction; on observing a new generation the server eagerly drops
/// the score cache (stale entries are already unreachable — the cache is
/// generation-checked — this just frees the memory and keeps hit-rate
/// stats meaningful).
class RecommendServer {
 public:
  /// `registry` must outlive the server and have at least one published
  /// model before the first request.
  RecommendServer(const ModelRegistry* registry, ServerConfig config);
  ~RecommendServer();

  RecommendServer(const RecommendServer&) = delete;
  RecommendServer& operator=(const RecommendServer&) = delete;

  /// Asynchronous: fan the request onto the worker pool.
  std::future<Recommendation> Submit(const RecommendRequest& request);

  /// Synchronous: handle on the calling thread (still records stats and
  /// honors the deadline — queue time is simply ~0).
  Recommendation Recommend(const RecommendRequest& request);

  ServerStats Snapshot() const;
  void ResetStats();

  const ServerConfig& config() const { return config_; }

 private:
  /// `waited_us` is the time the request spent queued before handling.
  /// `shed` forces the degraded popularity slate regardless of deadline
  /// (the queue-full path — no scoring work for a request we refused).
  Recommendation Handle(const RecommendRequest& request, double waited_us,
                        bool shed = false);

  const ModelRegistry* const registry_;
  const ServerConfig config_;
  TopKScorer scorer_;

  LatencyHistogram queue_hist_;
  LatencyHistogram score_hist_;
  LatencyHistogram total_hist_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> seen_generation_{0};

  ThreadPool pool_;  // last member: workers must die before the stats
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_RECOMMEND_SERVER_H_
