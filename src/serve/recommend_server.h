#ifndef DTREC_SERVE_RECOMMEND_SERVER_H_
#define DTREC_SERVE_RECOMMEND_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission_controller.h"
#include "serve/circuit_breaker.h"
#include "serve/model_registry.h"
#include "serve/server_stats.h"
#include "serve/topk_scorer.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dtrec::serve {

struct ServerConfig {
  size_t num_threads = 4;
  size_t default_k = 10;
  /// Backlog cap for Submit(): once this many requests wait in the pool
  /// queue, new submissions are *shed* — answered immediately on the
  /// calling thread with an empty slate instead of joining a queue they
  /// would only time out of. Bounds worst-case memory and tail latency
  /// under overload. 0 = unbounded (never shed at the queue).
  size_t max_queue = 0;
  /// Front-door admission control applied before the queue (token-bucket
  /// rate limit + queue-depth cap). All-zero = admit everything; the
  /// queue-full check above still applies.
  AdmissionConfig admission;
  /// Per-request latency budget (submit → response). A request whose
  /// budget is already spent when a worker picks it up is answered with
  /// the degraded popularity slate instead of a full scoring pass.
  /// 0 means "already expired" (every pooled request degrades —
  /// deterministic, used in tests); < 0 disables the deadline.
  double default_deadline_ms = 50.0;
  /// Budget for retrying a failed scoring pass (see RetryBudget): refilled
  /// by completed requests, so retries stay a bounded fraction of traffic.
  RetryBudgetConfig retry;
  /// Breaker thresholds shared by the scorer and score-cache breakers.
  CircuitBreakerConfig breaker;
  /// Injectable monotonic-microsecond clock for the breakers (tests drive
  /// backoff deterministically); default = steady_clock.
  CircuitBreaker::ClockFn breaker_clock;
  /// Score-cache + sweep knobs: cache.capacity = 0 disables the score
  /// cache; cache.mode picks the ScoreFresh sweep (dense / pruned /
  /// quantized — see TopKMode); cache.sweep_shard_items sizes the blocked
  /// sweeps' shards.
  ScoreCacheConfig cache;
  /// Registry backing the server's counters and latency histograms, so
  /// serving shares the export path (DumpText/DumpJson) with the rest of
  /// the process. Null → obs::GlobalMetrics().
  obs::MetricsRegistry* metrics = nullptr;
  /// Metric-name prefix, e.g. "serve" → "serve.requests". The constructor
  /// zeroes the prefix's metrics (a fresh server starts its counters at
  /// zero), so two *live* servers must not share a registry prefix.
  std::string metrics_prefix = "serve";
  /// Period of the background stats-dump thread logging Snapshot().
  /// Summary() through DTREC_LOG(INFO). 0 disables the thread.
  double stats_dump_period_s = 0.0;
  /// Head-sampling period for request tracing: every Nth Handle() records
  /// its span tree and may plant histogram exemplars; the rest run under a
  /// suppressing obs::TraceSampleScope, which keeps armed tracing near
  /// the DTREC_TRACING=OFF cost on the hot path (measured in DESIGN.md
  /// §5k). Sampled-out requests still mint a trace id (identity in logs /
  /// responses) — they just record nothing. 0 or 1 traces every request.
  size_t trace_sample_every = 16;
};

struct RecommendRequest {
  size_t user = 0;
  size_t k = 0;             ///< 0 → ServerConfig::default_k
  double deadline_ms = -1;  ///< < 0 → ServerConfig::default_deadline_ms
};

struct Recommendation {
  std::vector<ScoredItem> items;  ///< best-first slate; empty when shed
  ServeRung rung = ServeRung::kFullTopK;
  DegradeReason reason = DegradeReason::kNone;
  bool cache_hit = false;
  uint64_t generation = 0;  ///< model generation that produced the slate
  double queue_us = 0.0;
  double score_us = 0.0;
  double total_us = 0.0;

  /// Below the top two ladder rungs (popularity fallback or shed).
  bool degraded() const { return rung >= ServeRung::kPopularity; }
  bool shed() const { return rung == ServeRung::kShed; }
};

/// Front door of the serving subsystem.
///
///   registry ──Acquire()──▶ ServingModel (pinned per request)
///        │                        │
///   AdmissionController ─▶ ThreadPool workers ──▶ TopKScorer (+ LRU cache)
///        │                        │
///        └──── MetricsRegistry ◀── latency histograms / counters
///
/// Submit() runs the admission controller (token bucket + queue depth),
/// then enqueues onto the pool and returns a future; Recommend() is the
/// synchronous in-thread path (used by the workers themselves, and handy
/// for tests/examples). Every request pins the registry's current model
/// via shared_ptr, so hot swaps are torn-model-free by construction; on
/// observing a new generation the server eagerly drops the score cache
/// (stale entries are already unreachable — the cache is
/// generation-checked — this just frees the memory and keeps hit-rate
/// stats meaningful).
///
/// Every request resolves to exactly one rung of the degradation ladder:
///
///   kFullTopK ─▶ kCachedSlate ─▶ kPopularity ─▶ kShed
///
/// Admission/queue rejection ⇒ kShed (empty slate, O(1)). A burned
/// deadline ⇒ kPopularity (reason kDeadlineMiss). The scoring path is
/// guarded by two circuit breakers: `breaker.cache` over the score cache
/// (lookup + fill treated as one dependency) and `breaker.scorer` over
/// the fresh scoring pass. An open scorer breaker — or a scoring failure
/// that the deadline-aware retry budget cannot absorb — degrades to
/// kPopularity (reason kBreakerOpen). Failpoint sites `serve/queue_admit`,
/// `serve/score`, and `serve/cache_fill` inject faults at each boundary;
/// the chaos suite drives all of them concurrently and asserts the
/// counters stay torn-free.
///
/// Counters and histograms live in the ServerConfig's MetricsRegistry
/// under `metrics_prefix` (resolved once at construction; the hot path
/// touches only their relaxed atomics), so `DumpJson()` on that registry
/// exposes serving health next to training telemetry.
class RecommendServer {
 public:
  /// `registry` must outlive the server and have at least one published
  /// model before the first request.
  RecommendServer(const ModelRegistry* registry, ServerConfig config);
  ~RecommendServer();

  RecommendServer(const RecommendServer&) = delete;
  RecommendServer& operator=(const RecommendServer&) = delete;

  /// Asynchronous: admission-check, then fan the request onto the worker
  /// pool. A rejected request's future is already resolved (rung kShed).
  std::future<Recommendation> Submit(const RecommendRequest& request);

  /// Synchronous: handle on the calling thread (still records stats and
  /// honors the deadline — queue time is simply ~0, and admission is
  /// bypassed: there is no queue to protect).
  Recommendation Recommend(const RecommendRequest& request);

  ServerStats Snapshot() const;
  void ResetStats();

  const ServerConfig& config() const { return config_; }

  /// Breakers over the serve-path dependencies (tests/monitoring).
  const CircuitBreaker& scorer_breaker() const { return scorer_breaker_; }
  const CircuitBreaker& cache_breaker() const { return cache_breaker_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  /// `waited_us` is the time the request spent queued before handling.
  /// `forced` != kNone short-circuits the ladder: kQueueShed answers with
  /// the empty shed slate (no scoring work for a request we refused).
  /// `trace_id` is the request identity minted at Submit() (0 → mint one
  /// here): installed as an obs::TraceContext so spans, rung/breaker
  /// annotations and histogram exemplars all tie back to this request.
  Recommendation Handle(const RecommendRequest& request, double waited_us,
                        DegradeReason forced = DegradeReason::kNone,
                        uint64_t trace_id = 0);

  /// The scoring ladder: cached slate → fresh pass (breaker-guarded, one
  /// budgeted retry) → popularity. Fills `response` rung/reason/items.
  void ScoreLadder(const ServingModel& model, size_t user, size_t k,
                   double deadline_us, double spent_us,
                   Recommendation* response);

  void PopularitySlate(const ServingModel& model, size_t k,
                       DegradeReason reason, Recommendation* response);

  void CountResponse(const Recommendation& response);

  void StatsDumpLoop();

  const ModelRegistry* const registry_;
  const ServerConfig config_;
  TopKScorer scorer_;

  // Registry-owned metrics, resolved once under config_.metrics_prefix.
  obs::MetricsRegistry* const metrics_;
  obs::Counter* const requests_;
  obs::Counter* const rung_full_;
  obs::Counter* const rung_cached_;
  obs::Counter* const rung_popularity_;
  obs::Counter* const rung_shed_;
  obs::Counter* const deadline_miss_;
  obs::Counter* const queue_shed_;
  obs::Counter* const breaker_open_;
  obs::Counter* const cache_hits_;
  obs::Counter* const cache_misses_;
  obs::Counter* const retries_;
  obs::Counter* const retry_denied_;
  obs::Counter* const swaps_;
  obs::Gauge* const generation_;
  obs::Histogram* const queue_hist_;
  obs::Histogram* const score_hist_;
  obs::Histogram* const total_hist_;
  std::atomic<uint64_t> seen_generation_{0};
  /// Round-robin cursor for trace head-sampling (trace_sample_every).
  std::atomic<uint64_t> trace_tick_{0};

  AdmissionController admission_;
  RetryBudget retry_budget_;
  CircuitBreaker scorer_breaker_;
  CircuitBreaker cache_breaker_;

  std::mutex dump_mu_;
  std::condition_variable dump_cv_;
  bool stop_dump_ DTREC_GUARDED_BY(dump_mu_) = false;
  std::thread dump_thread_;

  ThreadPool pool_;  // last member: workers must die before the stats
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_RECOMMEND_SERVER_H_
