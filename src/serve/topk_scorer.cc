#include "serve/topk_scorer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tensor/kernels.h"
#include "util/failpoint.h"

namespace dtrec::serve {
namespace {

/// "a ranks strictly better than b": higher score, ties to lower item id.
inline bool Better(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Bounded top-k selection over Better. With comp = Better ("less" =
/// ranks earlier), the std heap root is the comp-maximum, i.e. the
/// *worst* kept entry; each rejected candidate pays one comparison
/// against the root once the heap is warm.
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k) : k_(k) { slate_.reserve(k + 1); }

  bool full() const { return slate_.size() >= k_; }
  /// Requires full() (and k > 0): the worst entry currently kept.
  const ScoredItem& worst() const { return slate_.front(); }
  const std::vector<ScoredItem>& items() const { return slate_; }

  void Offer(const ScoredItem& candidate) {
    if (slate_.size() < k_) {
      slate_.push_back(candidate);
      std::push_heap(slate_.begin(), slate_.end(), Better);
    } else if (k_ > 0 && Better(candidate, slate_.front())) {
      std::pop_heap(slate_.begin(), slate_.end(), Better);
      slate_.back() = candidate;
      std::push_heap(slate_.begin(), slate_.end(), Better);
    }
  }

  /// Consumes the heap into a best-first slate.
  std::vector<ScoredItem> Sorted() && {
    std::sort_heap(slate_.begin(), slate_.end(), Better);
    return std::move(slate_);
  }

 private:
  size_t k_;
  std::vector<ScoredItem> slate_;
};

/// Relative slack on the pruning bound: the bound is computed in a
/// different floating-point order than the scores it dominates, so a few
/// ulps of margin keep the early exit admissible despite rounding.
constexpr double kBoundSlack = 1e-9;

/// Thread-local sweep scratch. Survives across requests on the same
/// worker thread (zero steady-state allocation), but shrinks once its
/// capacity exceeds 2× what the live catalogue needs — otherwise a
/// hot-swap from a large to a small catalogue would strand O(|I_old|)
/// memory on every worker thread for the life of the process.
std::vector<double>& ScoreScratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

std::vector<int32_t>& QuantDotScratch() {
  thread_local std::vector<int32_t> scratch;
  return scratch;
}

std::vector<int8_t>& QuantUserScratch() {
  thread_local std::vector<int8_t> scratch;
  return scratch;
}

template <typename T>
void ResizeScratch(std::vector<T>* scratch, size_t needed) {
  if (scratch->capacity() > 2 * needed) std::vector<T>().swap(*scratch);
  scratch->resize(needed);
}

/// Shard length for the blocked sweeps: a multiple of 4 (min 4) so every
/// shard boundary lands on a BatchedRowDot 4-row group boundary and the
/// sharded sweep scores each item in exactly the order the unsharded
/// sweep would (only the final shard carries the ragged tail).
size_t ShardLength(const ScoreCacheConfig& config) {
  const size_t shard = config.sweep_shard_items -
                       config.sweep_shard_items % 4;
  return std::max<size_t>(shard, 4);
}

/// Dense exact sweep, sharded so the score scratch stays cache-sized on
/// catalogues larger than LLC. k > 0, k <= num_items.
std::vector<ScoredItem> DenseTopK(const ServingModel& model, size_t user,
                                  size_t k, size_t shard_len) {
  const size_t n = model.num_items();
  BoundedTopK heap(k);
  std::vector<double>& scores = ScoreScratch();
  ResizeScratch(&scores, std::min(shard_len, n));
  for (size_t begin = 0; begin < n; begin += shard_len) {
    const size_t end = std::min(begin + shard_len, n);
    model.ScoreItemRange(user, begin, end, scores.data());
    for (size_t i = begin; i < end; ++i) {
      heap.Offer({static_cast<uint32_t>(i), scores[i - begin]});
    }
  }
  return std::move(heap).Sorted();
}

/// Norm-bound pruned sweep. Items are visited in ‖q_i‖-descending order;
/// by Cauchy–Schwarz every score still ahead of position j is bounded by
/// ‖p_u‖·‖q_order[j]‖ + bu_u + max-suffix-bias[j], so once that bound
/// (plus FP slack) drops strictly below the heap root no remaining item
/// can displace it. Scores come from SweepScore, which reproduces the
/// dense path's accumulation order — the slate is bit-identical to
/// DenseTopK/BruteForceTopK. The exit must be strict: a remaining item
/// could still *tie* the root score with a lower id and rank better only
/// if its bound equals the root, which the tie-break makes impossible
/// only when bound < root.
/// Items the chunked pruned sweep scores per bound check. A multiple of 4
/// (every chunk stays group-aligned in the permuted table); small enough
/// that a satisfied bound exits after little wasted work, large enough
/// that BatchedRowDot runs at full blocked throughput.
constexpr size_t kPrunedChunkItems = 64;

std::vector<ScoredItem> PrunedTopK(const ServingModel& model, size_t user,
                                   size_t k) {
  const std::vector<uint32_t>& order = model.norm_order();
  const std::vector<double>& bias_max = model.norm_order_bias_max();
  const double pu_norm = model.user_norm(user);
  const double ub = model.user_bias_or_zero(user);
  const size_t n = order.size();
  std::vector<double>& scores = ScoreScratch();
  ResizeScratch(&scores, std::min(kPrunedChunkItems, (n + 3) & ~size_t{3}));
  BoundedTopK heap(k);
  // Chunked sweep down the ‖q‖-descending order: score a group-aligned
  // chunk through the dense kernel (bit-identical per item), offer every
  // score, and between chunks test the Cauchy–Schwarz + suffix-bias bound
  // at the chunk head — it upper-bounds all items the sweep has not
  // reached, so exiting on it is admissible. Checking per chunk instead
  // of per item only delays the exit by < one chunk of work.
  for (size_t j = 0; j < n; j += kPrunedChunkItems) {
    if (heap.full()) {
      const double pq = pu_norm * model.item_norm(order[j]);
      const double bound = pq + (ub + bias_max[j]);
      const double slack = kBoundSlack * (std::abs(pq) + std::abs(ub) +
                                          std::abs(bias_max[j]));
      if (bound + slack < heap.worst().score) break;
    }
    const size_t count = std::min(kPrunedChunkItems, n - j);
    model.ScoreNormOrderedRange(user, j, count, scores.data());
    for (size_t t = 0; t < count; ++t) {
      heap.Offer({order[j + t], scores[t]});
    }
  }
  return std::move(heap).Sorted();
}

/// Int8 approximate sweep + exact rerank. The quantized pass reads 8×
/// less memory per item than the fp64 sweep and scores through the
/// pmaddwd kernel; the top ~factor·k approximate candidates are then
/// rescored exactly with SweepScore, so the returned doubles match the
/// dense path bit-for-bit whenever the true top-K survives the shortlist.
std::vector<ScoredItem> QuantizedTopK(const ServingModel& model, size_t user,
                                      size_t k,
                                      const ScoreCacheConfig& config) {
  const size_t n = model.num_items();
  const size_t d = model.dim();
  const size_t factor = std::max<size_t>(config.quantized_shortlist_factor, 1);
  const size_t shortlist_k = std::min(factor * k, n);

  std::vector<int8_t>& quser = QuantUserScratch();
  ResizeScratch(&quser, d);
  double user_scale = 1.0;
  int32_t user_sum = 0;
  model.QuantizeUserVector(user, quser.data(), &user_scale, &user_sum);
  const double ub = model.user_bias_or_zero(user);

  const size_t shard_len = ShardLength(config);
  std::vector<int32_t>& qdots = QuantDotScratch();
  ResizeScratch(&qdots, std::min(shard_len, n));
  BoundedTopK shortlist(shortlist_k);
  for (size_t begin = 0; begin < n; begin += shard_len) {
    const size_t end = std::min(begin + shard_len, n);
    kernels::QuantizedRowDot(end - begin, d,
                             model.quantized_items() + begin * d, d,
                             quser.data(), qdots.data());
    for (size_t i = begin; i < end; ++i) {
      // Dequantized dot: su·s_i·(qdot − zp_i·Σb). The zp product is taken
      // in double — zp is unbounded for rows centered far from zero.
      const double approx =
          user_scale * model.item_scale(i) *
              (static_cast<double>(qdots[i - begin]) -
               static_cast<double>(model.item_zero_point(i)) * user_sum) +
          (ub + model.item_bias_or_zero(i));
      shortlist.Offer({static_cast<uint32_t>(i), approx});
    }
  }

  BoundedTopK exact(k);
  for (const ScoredItem& candidate : shortlist.items()) {
    exact.Offer({candidate.item, model.SweepScore(user, candidate.item)});
  }
  return std::move(exact).Sorted();
}

}  // namespace

bool ParseTopKMode(const std::string& text, TopKMode* mode) {
  if (text == "dense") {
    *mode = TopKMode::kDense;
  } else if (text == "pruned") {
    *mode = TopKMode::kPruned;
  } else if (text == "quantized") {
    *mode = TopKMode::kQuantized;
  } else {
    return false;
  }
  return true;
}

const char* TopKModeName(TopKMode mode) {
  switch (mode) {
    case TopKMode::kDense:
      return "dense";
    case TopKMode::kPruned:
      return "pruned";
    case TopKMode::kQuantized:
      return "quantized";
  }
  return "unknown";
}

TopKScorer::TopKScorer(ScoreCacheConfig cache_config)
    : config_(cache_config) {}

std::vector<ScoredItem> TopKScorer::TopK(const ServingModel& model,
                                         size_t user, size_t k,
                                         bool* cache_hit) {
  k = std::min(k, model.num_items());
  if (k == 0) {
    // Nothing to look up or store: an empty slate must not count as a
    // cache hit (it used to inflate the cache-hit rate whenever *any*
    // entry existed for the user) and must not touch LRU order.
    if (cache_hit != nullptr) *cache_hit = false;
    return {};
  }
  std::vector<ScoredItem> slate;
  if (CachedSlate(model.generation(), user, k, &slate)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return slate;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  slate = ScoreFresh(model, user, k);
  StoreSlate(model.generation(), user, slate);
  return slate;
}

bool TopKScorer::CachedSlate(uint64_t generation, size_t user, size_t k,
                             std::vector<ScoredItem>* out) {
  // k == 0 is never a hit: `slate.size() >= 0` holds for every cached
  // entry, so without this guard an empty request would both report a hit
  // and refresh the user's LRU position.
  if (config_.capacity == 0 || k == 0) return false;
  return CacheLookup(user, generation, k, out);
}

std::vector<ScoredItem> TopKScorer::ScoreFresh(const ServingModel& model,
                                               size_t user, size_t k) {
  DTREC_FAILPOINT("serve/score");
  k = std::min(k, model.num_items());
  if (k == 0) return {};
  switch (config_.mode) {
    case TopKMode::kPruned:
      return PrunedTopK(model, user, k);
    case TopKMode::kQuantized:
      return QuantizedTopK(model, user, k, config_);
    case TopKMode::kDense:
      break;
  }
  return DenseTopK(model, user, k, ShardLength(config_));
}

void TopKScorer::StoreSlate(uint64_t generation, size_t user,
                            const std::vector<ScoredItem>& slate) {
  if (config_.capacity == 0 || slate.empty()) return;
  DTREC_FAILPOINT("serve/cache_fill");
  CacheStore(user, generation, slate);
}

bool TopKScorer::CacheLookup(size_t user, uint64_t generation, size_t k,
                             std::vector<ScoredItem>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(user);
  if (it == entries_.end()) return false;
  CacheEntry& entry = it->second;
  if (entry.generation != generation || entry.slate.size() < k) {
    // Stale generation or too-short slate: treat as a miss; the recompute
    // will overwrite the entry.
    return false;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  out->assign(entry.slate.begin(), entry.slate.begin() + k);
  return true;
}

void TopKScorer::CacheStore(size_t user, uint64_t generation,
                            const std::vector<ScoredItem>& slate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(user);
  if (it != entries_.end()) {
    // Keep the longer slate when generations match (a k=50 result can
    // serve later k<=50 lookups); otherwise overwrite.
    CacheEntry& entry = it->second;
    if (entry.generation != generation ||
        slate.size() > entry.slate.size()) {
      entry.generation = generation;
      entry.slate = slate;
    }
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    return;
  }
  if (entries_.size() >= config_.capacity) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
  lru_.push_front(user);
  entries_.emplace(user, CacheEntry{generation, slate, lru_.begin()});
}

void TopKScorer::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t TopKScorer::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t TopKScorer::ScratchCapacityForTesting() {
  return ScoreScratch().capacity();
}

std::vector<ScoredItem> BruteForceTopK(const ServingModel& model, size_t user,
                                       size_t k) {
  std::vector<double> scores;
  model.ScoreAllItems(user, &scores);
  std::vector<ScoredItem> all(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    all[i] = {static_cast<uint32_t>(i), scores[i]};
  }
  std::sort(all.begin(), all.end(), Better);
  all.resize(std::min(k, all.size()));
  return all;
}

}  // namespace dtrec::serve
