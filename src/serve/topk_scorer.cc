#include "serve/topk_scorer.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"

namespace dtrec::serve {
namespace {

/// "a ranks strictly better than b": higher score, ties to lower item id.
inline bool Better(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

}  // namespace

TopKScorer::TopKScorer(ScoreCacheConfig cache_config)
    : config_(cache_config) {}

std::vector<ScoredItem> TopKScorer::TopK(const ServingModel& model,
                                         size_t user, size_t k,
                                         bool* cache_hit) {
  k = std::min(k, model.num_items());
  std::vector<ScoredItem> slate;
  if (CachedSlate(model.generation(), user, k, &slate)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return slate;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  slate = ScoreFresh(model, user, k);
  StoreSlate(model.generation(), user, slate);
  return slate;
}

bool TopKScorer::CachedSlate(uint64_t generation, size_t user, size_t k,
                             std::vector<ScoredItem>* out) {
  if (config_.capacity == 0) return false;
  return CacheLookup(user, generation, k, out);
}

std::vector<ScoredItem> TopKScorer::ScoreFresh(const ServingModel& model,
                                               size_t user, size_t k) {
  DTREC_FAILPOINT("serve/score");
  k = std::min(k, model.num_items());

  // Scratch survives across requests on the same worker thread: zero
  // steady-state allocation for the dominant O(|I|) buffer.
  thread_local std::vector<double> scores;
  model.ScoreAllItems(user, &scores);

  // Bounded min-heap over (score, item). With comp = Better ("less" =
  // ranks earlier), the std heap root is the comp-maximum, i.e. the
  // *worst* kept entry; each remaining item pays one comparison against
  // the root once the heap is warm.
  std::vector<ScoredItem> slate;
  slate.reserve(k + 1);
  for (uint32_t item = 0; item < scores.size(); ++item) {
    const ScoredItem candidate{item, scores[item]};
    if (slate.size() < k) {
      slate.push_back(candidate);
      std::push_heap(slate.begin(), slate.end(), Better);
    } else if (k > 0 && Better(candidate, slate.front())) {
      std::pop_heap(slate.begin(), slate.end(), Better);
      slate.back() = candidate;
      std::push_heap(slate.begin(), slate.end(), Better);
    }
  }
  std::sort_heap(slate.begin(), slate.end(), Better);  // best first
  return slate;
}

void TopKScorer::StoreSlate(uint64_t generation, size_t user,
                            const std::vector<ScoredItem>& slate) {
  if (config_.capacity == 0) return;
  DTREC_FAILPOINT("serve/cache_fill");
  CacheStore(user, generation, slate);
}

bool TopKScorer::CacheLookup(size_t user, uint64_t generation, size_t k,
                             std::vector<ScoredItem>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(user);
  if (it == entries_.end()) return false;
  CacheEntry& entry = it->second;
  if (entry.generation != generation || entry.slate.size() < k) {
    // Stale generation or too-short slate: treat as a miss; the recompute
    // will overwrite the entry.
    return false;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  out->assign(entry.slate.begin(), entry.slate.begin() + k);
  return true;
}

void TopKScorer::CacheStore(size_t user, uint64_t generation,
                            const std::vector<ScoredItem>& slate) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(user);
  if (it != entries_.end()) {
    // Keep the longer slate when generations match (a k=50 result can
    // serve later k<=50 lookups); otherwise overwrite.
    CacheEntry& entry = it->second;
    if (entry.generation != generation ||
        slate.size() > entry.slate.size()) {
      entry.generation = generation;
      entry.slate = slate;
    }
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    return;
  }
  if (entries_.size() >= config_.capacity) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
  }
  lru_.push_front(user);
  entries_.emplace(user, CacheEntry{generation, slate, lru_.begin()});
}

void TopKScorer::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t TopKScorer::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<ScoredItem> BruteForceTopK(const ServingModel& model, size_t user,
                                       size_t k) {
  std::vector<double> scores;
  model.ScoreAllItems(user, &scores);
  std::vector<ScoredItem> all(scores.size());
  for (uint32_t i = 0; i < scores.size(); ++i) all[i] = {i, scores[i]};
  std::sort(all.begin(), all.end(), Better);
  all.resize(std::min(k, all.size()));
  return all;
}

}  // namespace dtrec::serve
