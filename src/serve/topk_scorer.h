#ifndef DTREC_SERVE_TOPK_SCORER_H_
#define DTREC_SERVE_TOPK_SCORER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/serving_model.h"
#include "util/thread_annotations.h"

namespace dtrec::serve {

/// One slate entry: an item and its rating logit (or popularity count for
/// degraded slates).
struct ScoredItem {
  uint32_t item = 0;
  double score = 0.0;
};

/// How ScoreFresh sweeps the catalogue. All three modes share the bounded
/// heap and the deterministic ordering contract (score desc, ties by item
/// id asc); they differ only in how much of the catalogue they touch.
enum class TopKMode {
  /// Full O(|I|·d) pass in item-sharded blocks (the default; exact).
  kDense = 0,
  /// Norm-bound pruned sweep: items visited in ‖q_i‖-descending order,
  /// early-exiting once the Cauchy–Schwarz bound on every remaining item
  /// falls below the heap root. Bit-identical to the dense path.
  kPruned = 1,
  /// Int8 approximate sweep shortlisting ~factor·K candidates, then an
  /// exact fp64 rerank — returned scores are exact doubles, but an item
  /// squeezed out of the shortlist by quantization error can be missed
  /// (recall@K is pinned by the bench, not guaranteed).
  kQuantized = 2,
};

/// Parses "dense" / "pruned" / "quantized" (the dtrec_serve / bench knob
/// spelling). Returns false, leaving `mode` untouched, on anything else.
bool ParseTopKMode(const std::string& text, TopKMode* mode);
const char* TopKModeName(TopKMode mode);

/// Score-cache + sweep knobs. capacity == 0 disables caching entirely.
struct ScoreCacheConfig {
  size_t capacity = 1024;  ///< max users with a cached slate (LRU-evicted)
  TopKMode mode = TopKMode::kDense;  ///< ScoreFresh sweep strategy
  /// Item-shard size for the dense/quantized sweeps: scores are produced
  /// in blocks of this many items so the scratch buffer stays cache-sized
  /// on large catalogues. Rounded down to a multiple of 4 (min 4) so shard
  /// boundaries preserve BatchedRowDot's 4-row grouping and sharded
  /// results stay bit-identical to an unsharded pass.
  size_t sweep_shard_items = 32768;
  /// Quantized-mode shortlist size as a multiple of the requested K
  /// (clamped to ≥ 1 and to the catalogue size).
  size_t quantized_shortlist_factor = 4;
};

/// Scores a user against the catalogue and keeps the top K.
///
/// The dense mode runs ServingModel::ScoreItemRange (blocked dot-product
/// kernel) shard by shard into a thread-local scratch buffer, feeding a
/// bounded min-heap — O(|I|·d + |I|·log K), no full argsort, no
/// per-request allocation on the steady state. The pruned and quantized
/// modes (see TopKMode) cut the |I|·d term sub-linear; DESIGN.md §5j has
/// the math.
///
/// Ordering is deterministic: score descending, ties broken by item id
/// ascending (so results are reproducible and testable against a
/// brute-force argsort).
///
/// The optional per-user LRU cache stores the last computed slate tagged
/// with the model generation that produced it. A lookup only hits when
/// the tag matches the *current* model's generation and the cached slate
/// is at least as long as the requested K — so a stale entry can never be
/// served after a registry hot-swap even if InvalidateAll() has not run
/// yet. InvalidateAll() exists to reclaim the memory eagerly on swap.
class TopKScorer {
 public:
  explicit TopKScorer(ScoreCacheConfig cache_config = {});

  TopKScorer(const TopKScorer&) = delete;
  TopKScorer& operator=(const TopKScorer&) = delete;

  /// Top-`k` slate for `user` under `model` (k clamped to the catalogue
  /// size). Thread-safe. `cache_hit`, when non-null, reports whether the
  /// slate came from the cache. Composition of the three staged calls
  /// below — callers that need per-dependency failure handling (the
  /// degradation ladder in RecommendServer) drive the stages themselves.
  std::vector<ScoredItem> TopK(const ServingModel& model, size_t user,
                               size_t k, bool* cache_hit = nullptr);

  /// Cache stage, lookup half: true + a k-prefix copy into `out` when a
  /// generation-matching slate of length ≥ k is cached. Never scores.
  bool CachedSlate(uint64_t generation, size_t user, size_t k,
                   std::vector<ScoredItem>* out);

  /// Scoring stage: full scoring pass + bounded-heap top-K selection, no
  /// cache interaction. Failpoint site `serve/score` fires at entry (an
  /// armed `abort` spec throws failpoint::FailpointAbort — the injected
  /// "scorer dependency failed" fault the serving ladder degrades on).
  std::vector<ScoredItem> ScoreFresh(const ServingModel& model, size_t user,
                                     size_t k);

  /// Cache stage, fill half: stores `slate` for `user` under `generation`
  /// (LRU-evicting; no-op when the cache is disabled). Failpoint site
  /// `serve/cache_fill` fires before the cache is touched, so an injected
  /// fault never leaves a half-written entry.
  void StoreSlate(uint64_t generation, size_t user,
                  const std::vector<ScoredItem>& slate);

  /// Drops every cached slate (called on model hot-swap).
  void InvalidateAll();

  size_t cache_size() const;

  /// Capacity of the calling thread's score-scratch buffer — test hook for
  /// the shrink-after-hot-swap policy (a large→small catalogue swap must
  /// not strand O(|I_old|) doubles on every worker thread forever).
  static size_t ScratchCapacityForTesting();

 private:
  struct CacheEntry {
    uint64_t generation = 0;
    std::vector<ScoredItem> slate;
    std::list<size_t>::iterator lru_pos;
  };

  /// Returns a copy of the cached slate prefix on hit.
  bool CacheLookup(size_t user, uint64_t generation, size_t k,
                   std::vector<ScoredItem>* out);
  void CacheStore(size_t user, uint64_t generation,
                  const std::vector<ScoredItem>& slate);

  const ScoreCacheConfig config_;
  mutable std::mutex mu_;
  std::list<size_t> lru_ DTREC_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<size_t, CacheEntry> entries_ DTREC_GUARDED_BY(mu_);
};

/// Reference implementation: full argsort of all item scores (score desc,
/// item asc). O(|I|·log|I|); the test oracle for TopKScorer and the
/// honest baseline in the throughput bench.
std::vector<ScoredItem> BruteForceTopK(const ServingModel& model, size_t user,
                                       size_t k);

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_TOPK_SCORER_H_
