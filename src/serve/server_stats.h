#ifndef DTREC_SERVE_SERVER_STATS_H_
#define DTREC_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <string>

#include "obs/histogram.h"

namespace dtrec::serve {

/// The serving latency histogram now lives in src/obs/ as the
/// unit-agnostic obs::Histogram (same geometric buckets, plus Merge() and
/// snapshot-diff), registered through obs::MetricsRegistry so serving and
/// training share one export path. This alias keeps every existing
/// serve:: call site and test source-compatible.
using LatencyHistogram = ::dtrec::obs::Histogram;

/// The degradation ladder: every request resolves to exactly one rung,
/// best rung first. Numeric order IS ladder order, so "response A is no
/// worse than B" is an integer comparison — the chaos suite relies on it.
enum class ServeRung : uint8_t {
  kFullTopK = 0,     ///< fresh full scoring pass
  kCachedSlate = 1,  ///< served from the per-user score cache
  kPopularity = 2,   ///< popularity fallback (deadline or scorer failure)
  kShed = 3,         ///< refused — empty slate, O(1) cost
};

/// Why a request landed below kFullTopK/kCachedSlate. The three causes
/// are disjoint: every degraded request carries exactly one.
enum class DegradeReason : uint8_t {
  kNone = 0,
  kDeadlineMiss = 1,  ///< latency budget burned before scoring could start
  kQueueShed = 2,     ///< refused at admission or by the full worker queue
  kBreakerOpen = 3,   ///< scorer breaker open, or the scoring pass failed
};

const char* ToString(ServeRung rung);
const char* ToString(DegradeReason reason);

/// Point-in-time counters + per-stage latency summaries of a
/// RecommendServer. A snapshot is plain data — safe to copy, print, or
/// diff against an earlier snapshot.
///
/// Invariants (the chaos suite asserts them under fault injection):
///   requests == rung_full + rung_cached + rung_popularity + rung_shed
///   rung_popularity == deadline_miss + breaker_open
///   rung_shed == queue_shed
struct ServerStats {
  uint64_t requests = 0;         ///< completed requests
  uint64_t rung_full = 0;        ///< fresh full-scoring slates
  uint64_t rung_cached = 0;      ///< score-cache slates
  uint64_t rung_popularity = 0;  ///< popularity-fallback slates
  uint64_t rung_shed = 0;        ///< refused requests (empty slate)

  // Degradation causes, disjoint (see DegradeReason).
  uint64_t deadline_miss = 0;
  uint64_t queue_shed = 0;
  uint64_t breaker_open = 0;

  uint64_t cache_hits = 0;    ///< slates served from the score cache
  uint64_t cache_misses = 0;  ///< cache lookups that ran a full pass
  uint64_t retries = 0;       ///< scoring retries granted by the budget
  uint64_t retry_denied = 0;  ///< retries refused (budget or deadline)
  uint64_t model_swaps = 0;   ///< registry generation changes observed
  uint64_t generation = 0;    ///< model generation at snapshot time

  LatencyHistogram::Summary queue_us;  ///< submit → worker pickup
  LatencyHistogram::Summary score_us;  ///< scoring (or fallback) stage
  LatencyHistogram::Summary total_us;  ///< submit → response ready

  /// Requests that landed below the top two rungs.
  uint64_t degraded() const { return rung_popularity + rung_shed; }

  double degraded_rate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(degraded()) / requests;
  }
  double shed_rate() const {
    return requests == 0 ? 0.0 : static_cast<double>(rung_shed) / requests;
  }
  double cache_hit_rate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / lookups;
  }

  /// One-line counter digest, e.g. "requests=1000 full=800 cached=150
  /// pop=40 shed=10 deadline_miss=30 breaker_open=10 cache_hit=34.0% ...".
  std::string Summary() const;
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_SERVER_STATS_H_
