#ifndef DTREC_SERVE_SERVER_STATS_H_
#define DTREC_SERVE_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace dtrec::serve {

/// Lock-free latency histogram at microsecond resolution.
///
/// Fixed geometric buckets (factor 1.25 starting at 1µs, 96 of them —
/// covers 1µs to ~20 minutes at ≤12.5% relative error per bucket, which
/// is plenty for p50/p95/p99 reporting). Record() is a couple of relaxed
/// atomic increments, safe to call from every worker concurrently;
/// Summarize() reads a consistent-enough snapshot for monitoring.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 96;

  LatencyHistogram();

  /// Records one observation of `micros` (clamped to [0, last bucket]).
  void Record(double micros);

  struct Summary {
    uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };

  /// Percentiles are interpolated within the containing bucket.
  Summary Summarize() const;

  void Reset();

 private:
  /// Upper bound (µs) of bucket i: 1.25^i.
  static double BucketUpper(size_t i);
  static size_t BucketIndex(double micros);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};  // integral ns: atomic add, no FP atomics
  std::atomic<uint64_t> max_ns_{0};
};

/// Point-in-time counters + per-stage latency summaries of a
/// RecommendServer. A snapshot is plain data — safe to copy, print, or
/// diff against an earlier snapshot.
struct ServerStats {
  uint64_t requests = 0;      ///< completed requests
  uint64_t degraded = 0;      ///< popularity fallbacks (deadline or shed)
  uint64_t shed = 0;          ///< refused by the full queue (⊆ degraded)
  uint64_t cache_hits = 0;    ///< slates served from the score cache
  uint64_t cache_misses = 0;  ///< slates that ran the full scoring pass
  uint64_t model_swaps = 0;   ///< registry generation changes observed
  uint64_t generation = 0;    ///< model generation at snapshot time

  LatencyHistogram::Summary queue_us;  ///< submit → worker pickup
  LatencyHistogram::Summary score_us;  ///< scoring (or fallback) stage
  LatencyHistogram::Summary total_us;  ///< submit → response ready

  double degraded_rate() const {
    return requests == 0 ? 0.0 : static_cast<double>(degraded) / requests;
  }
  double cache_hit_rate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / lookups;
  }

  /// One-line counter digest, e.g.
  /// "requests=1000 degraded=1.2% cache_hit=34.0% generation=2".
  std::string Summary() const;
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_SERVER_STATS_H_
