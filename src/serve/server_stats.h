#ifndef DTREC_SERVE_SERVER_STATS_H_
#define DTREC_SERVE_SERVER_STATS_H_

#include <cstdint>
#include <string>

#include "obs/histogram.h"

namespace dtrec::serve {

/// The serving latency histogram now lives in src/obs/ as the
/// unit-agnostic obs::Histogram (same geometric buckets, plus Merge() and
/// snapshot-diff), registered through obs::MetricsRegistry so serving and
/// training share one export path. This alias keeps every existing
/// serve:: call site and test source-compatible.
using LatencyHistogram = ::dtrec::obs::Histogram;

/// Point-in-time counters + per-stage latency summaries of a
/// RecommendServer. A snapshot is plain data — safe to copy, print, or
/// diff against an earlier snapshot.
struct ServerStats {
  uint64_t requests = 0;      ///< completed requests
  uint64_t degraded = 0;      ///< popularity fallbacks (deadline or shed)
  uint64_t shed = 0;          ///< refused by the full queue (⊆ degraded)
  uint64_t cache_hits = 0;    ///< slates served from the score cache
  uint64_t cache_misses = 0;  ///< slates that ran the full scoring pass
  uint64_t model_swaps = 0;   ///< registry generation changes observed
  uint64_t generation = 0;    ///< model generation at snapshot time

  LatencyHistogram::Summary queue_us;  ///< submit → worker pickup
  LatencyHistogram::Summary score_us;  ///< scoring (or fallback) stage
  LatencyHistogram::Summary total_us;  ///< submit → response ready

  double degraded_rate() const {
    return requests == 0 ? 0.0 : static_cast<double>(degraded) / requests;
  }
  double cache_hit_rate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / lookups;
  }

  /// One-line counter digest, e.g.
  /// "requests=1000 degraded=1.2% cache_hit=34.0% generation=2".
  std::string Summary() const;
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_SERVER_STATS_H_
