#ifndef DTREC_SERVE_SERVING_MODEL_H_
#define DTREC_SERVE_SERVING_MODEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/disentangled_embeddings.h"
#include "models/mf_model.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec::serve {

/// An immutable scoring snapshot built from trained parameters.
///
/// Serving never touches trainer state: the registry copies the rating
/// head (user/item factors + optional biases) out of a trained model into
/// one of these, and readers score through a `shared_ptr<const
/// ServingModel>` — so a hot swap can never mutate a model a request is
/// mid-way through scoring.
///
/// The model also carries the *popularity prior* (train-split interaction
/// counts): the degraded slate served when a request blows its deadline,
/// and the classic MNAR-biased baseline a debiased top-K should beat.
///
/// `generation()` is the registry-assigned version tag. It is stored
/// twice (head and tail of the object) and `IntegrityOk()` cross-checks
/// them, so a torn/partially-published model is detectable in tests.
class ServingModel {
 public:
  ServingModel() = default;

  /// Hard ceiling on catalogue size. Slate entries (`ScoredItem::item`)
  /// and the precomputed sweep orders store item ids as uint32_t, so a
  /// catalogue beyond 2³²−1 items would silently wrap the id — FromFactors
  /// rejects it with InvalidArgument instead (see ValidateCatalogueSize).
  static constexpr size_t kMaxCatalogueItems =
      std::numeric_limits<uint32_t>::max();

  /// InvalidArgument when `num_items` exceeds kMaxCatalogueItems. Exposed
  /// separately from FromFactors so the bound is testable without
  /// materializing a >2³²-row matrix.
  static Status ValidateCatalogueSize(size_t num_items);

  /// From explicit rating-head factors. `user_bias`/`item_bias` may be
  /// empty; `item_popularity` must have one entry per item (pass zeros if
  /// unknown). Shapes are validated.
  static Result<ServingModel> FromFactors(Matrix user_factors,
                                          Matrix item_factors,
                                          Matrix user_bias, Matrix item_bias,
                                          std::vector<double> item_popularity);

  /// From a trained DT model: the *primary* blocks (P′, Q′) plus rating
  /// biases — exactly the paper's serving-time predictor σ(p′_u·q′_i).
  static Result<ServingModel> FromDisentangled(
      const DisentangledEmbeddings& emb, std::vector<double> item_popularity);

  /// From a plain MF model (baseline trainers).
  static Result<ServingModel> FromMf(const MfModel& model,
                                     std::vector<double> item_popularity);

  size_t num_users() const { return user_factors_.rows(); }
  size_t num_items() const { return item_factors_.rows(); }
  size_t dim() const { return user_factors_.cols(); }

  uint64_t generation() const { return generation_head_; }
  bool IntegrityOk() const { return generation_head_ == generation_tail_; }

  /// Rating logit p_u · q_i [+ bu_u + bi_i].
  double Score(size_t user, size_t item) const;

  /// Scores `user` against every item into `out` (resized to num_items()).
  /// Blocked over items so the user vector and a tile of item rows stay
  /// cache-resident; inner dot is 4-way unrolled. Biases (when present)
  /// are folded in with a single fused pass over the score buffer.
  void ScoreAllItems(size_t user, std::vector<double>* out) const;

  /// Scores `user` against items [begin, end) into `out[0 .. end-begin)`.
  /// This is the shard primitive behind ScoreAllItems: results are
  /// bit-identical to the corresponding slice of a full ScoreAllItems pass
  /// *provided `begin` is a multiple of 4* (BatchedRowDot groups rows in
  /// fours; aligned shard starts keep every item in the same body/tail
  /// group it occupies in the unsharded sweep — see sweep_tail_begin()).
  void ScoreItemRange(size_t user, size_t begin, size_t end,
                      double* out) const;

  /// Score of one item, bit-identical to the value ScoreAllItems writes
  /// for it. Routes through BatchedRowDot itself — the item's aligned
  /// 4-row group for body items, the 1-row tail path for ragged-tail
  /// items — so the accumulation order (and the compiler's codegen for
  /// it) is the dense kernel's by construction, then mirrors the fused
  /// bias add. Primitive behind the quantized rerank and the pruned
  /// sweep's tail fix-up; costs one 4-row group dot per call.
  double SweepScore(size_t user, size_t item) const;

  /// Scores the norm_order() window [begin, begin+count) into
  /// `out[0..count)`, each value bit-identical to what ScoreAllItems
  /// produces for that item. `begin` must be a multiple of 4; `count` is
  /// clipped to the catalogue. `out` must have room for count rounded up
  /// to a multiple of 4 (pad lanes are scratch, not results). Internally sweeps a norm-permuted,
  /// 4-row-padded copy of the item factors so the window is contiguous
  /// for BatchedRowDot, then re-scores the (≤3) items that live in the
  /// dense sweep's ragged tail via SweepScore. The pruned top-K sweep's
  /// chunk primitive.
  void ScoreNormOrderedRange(size_t user, size_t begin, size_t count,
                             double* out) const;

  /// First item of BatchedRowDot's ragged tail: num_items() − num_items()%4.
  /// Items at or past this index accumulate in tail order.
  size_t sweep_tail_begin() const { return sweep_tail_begin_; }

  // --- norm-bound pruning support (precomputed at build time) -----------

  double user_norm(size_t user) const { return user_norms_[user]; }
  double item_norm(size_t item) const { return item_norms_[item]; }
  double user_bias_or_zero(size_t user) const {
    return user_bias_.empty() ? 0.0 : user_bias_(user, 0);
  }
  double item_bias_or_zero(size_t item) const {
    return item_bias_.empty() ? 0.0 : item_bias_(item, 0);
  }
  /// Item ids sorted by ‖q_i‖ descending (ties by id ascending): the sweep
  /// order for norm-bound pruning.
  const std::vector<uint32_t>& norm_order() const { return norm_order_; }
  /// Suffix maximum of item bias over norm_order(): norm_order_bias_max()[j]
  /// = max over positions ≥ j of bi. Together with ‖p_u‖·‖q‖ it gives an
  /// admissible upper bound on every score still ahead of the sweep.
  const std::vector<double>& norm_order_bias_max() const {
    return norm_order_bias_max_;
  }

  // --- int8 quantized-sweep support (precomputed at build time) ---------

  /// Row-major |I|×dim() int8 item table; row i dequantizes as
  /// item_scale(i)·(q − item_zero_point(i)) per coordinate.
  const int8_t* quantized_items() const { return quantized_items_.data(); }
  double item_scale(size_t item) const { return item_scales_[item]; }
  int32_t item_zero_point(size_t item) const {
    return item_zero_points_[item];
  }
  /// Quantizes the user vector symmetrically into `out[0..dim())` (caller
  /// sizes it); writes the dequantization scale and the sum of quantized
  /// coordinates (the zero-point correction term for the approx dot).
  void QuantizeUserVector(size_t user, int8_t* out, double* scale,
                          int32_t* sum) const;

  /// Items sorted by popularity descending (ties by id ascending): the
  /// degraded-fallback ranking, precomputed at build time so a fallback
  /// response is O(K).
  const std::vector<uint32_t>& popularity_ranking() const {
    return popularity_ranking_;
  }
  double popularity(size_t item) const { return item_popularity_[item]; }

 private:
  friend class ModelRegistry;  // stamps generation at publish time
  void set_generation(uint64_t generation) {
    generation_head_ = generation;
    generation_tail_ = generation;
  }

  /// Fills every sweep-support table (norms, norm order, bias suffix max,
  /// int8 item table). Called once at the end of FromFactors.
  void BuildSweepIndex();

  uint64_t generation_head_ = 0;
  Matrix user_factors_;  // |U|×d
  Matrix item_factors_;  // |I|×d
  Matrix user_bias_;     // |U|×1 or empty
  Matrix item_bias_;     // |I|×1 or empty
  std::vector<double> item_popularity_;    // |I|
  std::vector<uint32_t> popularity_ranking_;  // |I|, popularity desc
  // Sub-linear sweep tables (BuildSweepIndex).
  size_t sweep_tail_begin_ = 0;
  std::vector<double> user_norms_;            // |U|, ‖p_u‖
  std::vector<double> item_norms_;            // |I|, ‖q_i‖
  std::vector<uint32_t> norm_order_;          // |I|, ‖q‖ desc
  std::vector<double> norm_order_bias_max_;   // |I|, suffix max of bi
  // Item factors permuted into norm_order_ and zero-padded to a multiple
  // of 4 rows: lets the pruned sweep feed contiguous, group-aligned
  // chunks straight to BatchedRowDot (doubles the fp item storage — a
  // deliberate serving-index trade, see DESIGN.md §5j).
  Matrix norm_sorted_factors_;
  std::vector<int8_t> quantized_items_;       // |I|·d, row-major
  std::vector<double> item_scales_;           // |I|
  std::vector<int32_t> item_zero_points_;     // |I|
  uint64_t generation_tail_ = 0;
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_SERVING_MODEL_H_
