#ifndef DTREC_SERVE_SERVING_MODEL_H_
#define DTREC_SERVE_SERVING_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/disentangled_embeddings.h"
#include "models/mf_model.h"
#include "tensor/matrix.h"
#include "util/status.h"

namespace dtrec::serve {

/// An immutable scoring snapshot built from trained parameters.
///
/// Serving never touches trainer state: the registry copies the rating
/// head (user/item factors + optional biases) out of a trained model into
/// one of these, and readers score through a `shared_ptr<const
/// ServingModel>` — so a hot swap can never mutate a model a request is
/// mid-way through scoring.
///
/// The model also carries the *popularity prior* (train-split interaction
/// counts): the degraded slate served when a request blows its deadline,
/// and the classic MNAR-biased baseline a debiased top-K should beat.
///
/// `generation()` is the registry-assigned version tag. It is stored
/// twice (head and tail of the object) and `IntegrityOk()` cross-checks
/// them, so a torn/partially-published model is detectable in tests.
class ServingModel {
 public:
  ServingModel() = default;

  /// From explicit rating-head factors. `user_bias`/`item_bias` may be
  /// empty; `item_popularity` must have one entry per item (pass zeros if
  /// unknown). Shapes are validated.
  static Result<ServingModel> FromFactors(Matrix user_factors,
                                          Matrix item_factors,
                                          Matrix user_bias, Matrix item_bias,
                                          std::vector<double> item_popularity);

  /// From a trained DT model: the *primary* blocks (P′, Q′) plus rating
  /// biases — exactly the paper's serving-time predictor σ(p′_u·q′_i).
  static Result<ServingModel> FromDisentangled(
      const DisentangledEmbeddings& emb, std::vector<double> item_popularity);

  /// From a plain MF model (baseline trainers).
  static Result<ServingModel> FromMf(const MfModel& model,
                                     std::vector<double> item_popularity);

  size_t num_users() const { return user_factors_.rows(); }
  size_t num_items() const { return item_factors_.rows(); }
  size_t dim() const { return user_factors_.cols(); }

  uint64_t generation() const { return generation_head_; }
  bool IntegrityOk() const { return generation_head_ == generation_tail_; }

  /// Rating logit p_u · q_i [+ bu_u + bi_i].
  double Score(size_t user, size_t item) const;

  /// Scores `user` against every item into `out` (resized to num_items()).
  /// Blocked over items so the user vector and a tile of item rows stay
  /// cache-resident; inner dot is 4-way unrolled.
  void ScoreAllItems(size_t user, std::vector<double>* out) const;

  /// Items sorted by popularity descending (ties by id ascending): the
  /// degraded-fallback ranking, precomputed at build time so a fallback
  /// response is O(K).
  const std::vector<uint32_t>& popularity_ranking() const {
    return popularity_ranking_;
  }
  double popularity(size_t item) const { return item_popularity_[item]; }

 private:
  friend class ModelRegistry;  // stamps generation at publish time
  void set_generation(uint64_t generation) {
    generation_head_ = generation;
    generation_tail_ = generation;
  }

  uint64_t generation_head_ = 0;
  Matrix user_factors_;  // |U|×d
  Matrix item_factors_;  // |I|×d
  Matrix user_bias_;     // |U|×1 or empty
  Matrix item_bias_;     // |I|×1 or empty
  std::vector<double> item_popularity_;    // |I|
  std::vector<uint32_t> popularity_ranking_;  // |I|, popularity desc
  uint64_t generation_tail_ = 0;
};

}  // namespace dtrec::serve

#endif  // DTREC_SERVE_SERVING_MODEL_H_
