#include "propensity/mf_propensity.h"

#include <algorithm>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "data/samplers.h"
#include "optim/adam.h"
#include "util/numeric_guard.h"

namespace dtrec {

Status MfPropensity::Fit(const RatingDataset& dataset) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  if (config_.dim == 0) {
    return Status::InvalidArgument("propensity dim must be positive");
  }
  MfModelConfig mc;
  mc.num_users = dataset.num_users();
  mc.num_items = dataset.num_items();
  mc.dim = config_.dim;
  mc.use_bias = true;  // the marginal rate lives in the biases
  mc.init_scale = config_.init_scale;
  mc.seed = config_.seed;
  model_ = MfModel(mc);

  Adam optimizer(config_.learning_rate, 0.9, 0.999, 1e-8,
                 config_.weight_decay);
  FullMatrixBatchSampler sampler(dataset, config_.seed ^ 0x9e3779b9ULL);
  const size_t cells = dataset.num_users() * dataset.num_items();
  size_t steps = config_.steps_per_epoch;
  if (steps == 0) {
    // At least 20 steps per epoch so small datasets still converge.
    steps = std::clamp<size_t>(cells / config_.batch_cells, 20, 200);
  }

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (size_t step = 0; step < steps; ++step) {
      const Batch batch = sampler.Sample(config_.batch_cells);
      const Matrix weights(batch.size(), 1,
                           1.0 / static_cast<double>(batch.size()));
      ag::Tape tape;
      std::vector<ag::Var> leaves = model_.MakeLeaves(&tape);
      ag::Var logits =
          model_.BatchLogits(&tape, leaves, batch.users, batch.items);
      ag::Var loss = ag::SigmoidBceSum(logits, batch.observed, weights);
      tape.Backward(loss);
      const std::vector<Matrix*> params = model_.Params();
      for (size_t i = 0; i < leaves.size(); ++i) {
        optimizer.Step(params[i], tape.GradOf(leaves[i]));
      }
    }
  }
  return Status::OK();
}

double MfPropensity::Propensity(size_t user, size_t item) const {
  const double p = model_.PredictProbability(user, item);
  DTREC_ASSERT_PROPENSITY(p);
  return p;
}

}  // namespace dtrec
