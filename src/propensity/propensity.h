#ifndef DTREC_PROPENSITY_PROPENSITY_H_
#define DTREC_PROPENSITY_PROPENSITY_H_

#include <string>

#include "data/rating_dataset.h"
#include "util/status.h"

namespace dtrec {

/// Interface for observation-propensity estimators P(o=1 | ·).
///
/// Section III-C of the paper distinguishes three target propensities:
///  - the MCAR propensity P(o=1)            (constant),
///  - the MAR propensity  P(o=1 | x)        (features only),
///  - the MNAR propensity P(o=1 | x, r)     (features and rating).
/// Estimators that cannot use the rating simply ignore it in
/// PropensityGivenRating. The disentangled MNAR propensity of the proposed
/// method lives in core/ (it is learned jointly with the recommender).
class PropensityModel {
 public:
  virtual ~PropensityModel() = default;

  /// Fits the estimator on the dataset's observation pattern.
  virtual Status Fit(const RatingDataset& dataset) = 0;

  /// P(o=1 | x_{u,i}) — must be callable for every cell.
  virtual double Propensity(size_t user, size_t item) const = 0;

  /// P(o=1 | x_{u,i}, r) for estimators that model the rating channel;
  /// defaults to the rating-free propensity.
  virtual double PropensityGivenRating(size_t user, size_t item,
                                       double rating) const {
    (void)rating;
    return Propensity(user, item);
  }

  virtual std::string name() const = 0;
};

/// Clips a propensity from below; every IPS-family estimator divides by a
/// propensity, and clipping bounds the variance blow-up at tiny values
/// (the failure mode StableDR targets).
double ClipPropensity(double p, double min_p);

/// The MCAR propensity: P(o=1) = |O| / |D|.
class ConstantPropensity : public PropensityModel {
 public:
  Status Fit(const RatingDataset& dataset) override;
  double Propensity(size_t user, size_t item) const override;
  std::string name() const override { return "constant"; }

  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Naive-Bayes MNAR propensity (Schnabel et al. 2016): uses the MCAR test
/// slice to estimate P(r) and the biased train slice for P(r | o=1), then
///   P(o=1 | r) = P(r | o=1) · P(o=1) / P(r).
/// Ratings must be binary {0,1}. This is the classical way to target the
/// *rating-dependent* propensity without the identifiability machinery —
/// it cheats by consuming unbiased data the proposed method does not need.
class NaiveBayesPropensity : public PropensityModel {
 public:
  Status Fit(const RatingDataset& dataset) override;
  double Propensity(size_t user, size_t item) const override;
  double PropensityGivenRating(size_t user, size_t item,
                               double rating) const override;
  std::string name() const override { return "naive_bayes"; }

 private:
  double p_o_ = 0.0;            // P(o=1)
  double p_r1_given_o_ = 0.0;   // P(r=1 | o=1)
  double p_r1_marginal_ = 0.0;  // P(r=1) from the unbiased slice
};

}  // namespace dtrec

#endif  // DTREC_PROPENSITY_PROPENSITY_H_
