#ifndef DTREC_PROPENSITY_MF_PROPENSITY_H_
#define DTREC_PROPENSITY_MF_PROPENSITY_H_

#include <string>

#include "models/mf_model.h"
#include "propensity/propensity.h"

namespace dtrec {

/// Matrix-factorization MAR propensity: P(o=1 | u,i) = σ(p_u·q_i + bias
/// terms), trained with cross entropy on the observation indicator over
/// the full matrix. This is the propensity model the paper's Table II
/// assumes for the vanilla IPS/DR baselines (their 2×/3× embedding rows)
/// — richer than the logistic identity model, same MAR conditioning set,
/// and therefore equally biased under MNAR (Lemma 2a).
struct MfPropensityConfig {
  size_t dim = 8;
  size_t epochs = 8;
  size_t batch_cells = 4096;
  size_t steps_per_epoch = 0;  ///< 0 → |D| / batch_cells, capped at 200
  double learning_rate = 0.05;
  double weight_decay = 1e-5;
  double init_scale = 0.1;
  uint64_t seed = 47;
};

class MfPropensity : public PropensityModel {
 public:
  MfPropensity() = default;
  explicit MfPropensity(const MfPropensityConfig& config)
      : config_(config) {}

  Status Fit(const RatingDataset& dataset) override;
  double Propensity(size_t user, size_t item) const override;
  std::string name() const override { return "mf"; }

  size_t NumParameters() const { return model_.NumParameters(); }

 private:
  MfPropensityConfig config_;
  MfModel model_;
};

}  // namespace dtrec

#endif  // DTREC_PROPENSITY_MF_PROPENSITY_H_
