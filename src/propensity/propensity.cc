#include "propensity/propensity.h"

#include "obs/prop_stats.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

double ClipPropensity(double p, double min_p) {
  DTREC_CHECK_GT(min_p, 0.0);
  // `fired` = below the floor (the variance failure mode the clip rate
  // tracks); the benign clamp toward 1 from above does not count.
  obs::RecordPropensityClip(/*fired=*/p < min_p);
  return Clamp(p, min_p, 1.0);
}

Status ConstantPropensity::Fit(const RatingDataset& dataset) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  const double cells = static_cast<double>(dataset.num_users()) *
                       static_cast<double>(dataset.num_items());
  value_ = static_cast<double>(dataset.train().size()) / cells;
  return Status::OK();
}

double ConstantPropensity::Propensity(size_t, size_t) const {
  DTREC_ASSERT_PROPENSITY(value_);
  return value_;
}

Status NaiveBayesPropensity::Fit(const RatingDataset& dataset) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.test().empty()) {
    return Status::FailedPrecondition(
        "naive-Bayes propensity needs an unbiased (MCAR) test slice for "
        "the marginal rating distribution");
  }
  for (const auto& t : dataset.train()) {
    if (t.rating != 0.0 && t.rating != 1.0) {
      return Status::InvalidArgument(
          "naive-Bayes propensity requires binary ratings; call "
          "BinarizeRatings first");
    }
  }
  const double cells = static_cast<double>(dataset.num_users()) *
                       static_cast<double>(dataset.num_items());
  p_o_ = static_cast<double>(dataset.train().size()) / cells;

  double pos_train = 0.0;
  for (const auto& t : dataset.train()) pos_train += t.rating;
  p_r1_given_o_ = pos_train / static_cast<double>(dataset.train().size());

  double pos_test = 0.0;
  for (const auto& t : dataset.test()) pos_test += t.rating >= 0.5 ? 1 : 0;
  p_r1_marginal_ = pos_test / static_cast<double>(dataset.test().size());
  if (p_r1_marginal_ <= 0.0 || p_r1_marginal_ >= 1.0) {
    return Status::FailedPrecondition(
        "degenerate marginal rating distribution in the unbiased slice");
  }
  return Status::OK();
}

double NaiveBayesPropensity::Propensity(size_t, size_t) const {
  // Without the rating, fall back to the marginal observation rate.
  DTREC_ASSERT_PROPENSITY(p_o_);
  return p_o_;
}

double NaiveBayesPropensity::PropensityGivenRating(size_t, size_t,
                                                   double rating) const {
  const double r1 = rating >= 0.5 ? 1.0 : 0.0;
  const double p_r_given_o =
      r1 == 1.0 ? p_r1_given_o_ : 1.0 - p_r1_given_o_;
  const double p_r = r1 == 1.0 ? p_r1_marginal_ : 1.0 - p_r1_marginal_;
  // The plug-in estimate P(r|o)·P(o)/P(r) is not guaranteed to land in
  // (0, 1]; clamp so downstream inverse weights stay bounded.
  const double p = ClipPropensity(p_r_given_o * p_o_ / p_r, 1e-6);
  DTREC_ASSERT_PROPENSITY(p);
  return p;
}

}  // namespace dtrec
