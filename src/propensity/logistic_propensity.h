#ifndef DTREC_PROPENSITY_LOGISTIC_PROPENSITY_H_
#define DTREC_PROPENSITY_LOGISTIC_PROPENSITY_H_

#include <string>
#include <vector>

#include "propensity/propensity.h"

namespace dtrec {

/// Logistic-regression MAR propensity on (user, item) identity features:
///   P(o=1 | x_{u,i}) = σ(a_u + b_i + c)
/// fit by SGD on the full observation matrix — the standard learned
/// propensity of the IPS/DR literature the paper analyzes (and exactly the
/// estimator Lemma 2(a) proves biased under MNAR, since it never sees r).
struct LogisticPropensityConfig {
  size_t epochs = 8;
  double learning_rate = 0.1;
  double weight_decay = 1e-6;
  size_t batch_cells = 8192;   ///< cells sampled per SGD step
  size_t steps_per_epoch = 0;  ///< 0 → |D| / batch_cells
  uint64_t seed = 31;
};

class LogisticPropensity : public PropensityModel {
 public:
  LogisticPropensity() = default;
  explicit LogisticPropensity(const LogisticPropensityConfig& config)
      : config_(config) {}

  Status Fit(const RatingDataset& dataset) override;
  double Propensity(size_t user, size_t item) const override;
  std::string name() const override { return "logistic"; }

  /// Fitted parameters (tests / diagnostics).
  const std::vector<double>& user_logits() const { return user_logit_; }
  const std::vector<double>& item_logits() const { return item_logit_; }
  double bias() const { return bias_; }

 private:
  LogisticPropensityConfig config_;
  std::vector<double> user_logit_;
  std::vector<double> item_logit_;
  double bias_ = 0.0;
};

}  // namespace dtrec

#endif  // DTREC_PROPENSITY_LOGISTIC_PROPENSITY_H_
