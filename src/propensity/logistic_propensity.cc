#include "propensity/logistic_propensity.h"

#include "data/samplers.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"
#include "util/random.h"

namespace dtrec {

Status LogisticPropensity::Fit(const RatingDataset& dataset) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  const size_t m = dataset.num_users();
  const size_t n = dataset.num_items();
  user_logit_.assign(m, 0.0);
  item_logit_.assign(n, 0.0);
  // Initialize the shared bias at the marginal log-odds for fast
  // convergence.
  const double rate = Clamp(dataset.TrainDensity(), 1e-6, 1.0 - 1e-6);
  bias_ = Logit(rate);

  FullMatrixBatchSampler sampler(dataset, config_.seed);
  const size_t cells = m * n;
  const size_t steps_per_epoch =
      config_.steps_per_epoch > 0
          ? config_.steps_per_epoch
          : std::max<size_t>(1, cells / config_.batch_cells);

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (size_t step = 0; step < steps_per_epoch; ++step) {
      const Batch batch = sampler.Sample(config_.batch_cells);
      const double inv_b = 1.0 / static_cast<double>(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        const size_t u = batch.users[i];
        const size_t it = batch.items[i];
        const double p =
            Sigmoid(user_logit_[u] + item_logit_[it] + bias_);
        const double g = (p - batch.observed(i, 0)) * inv_b *
                         static_cast<double>(batch.size());
        // Plain per-example SGD (inv_b cancels; kept for clarity).
        user_logit_[u] -= config_.learning_rate *
                          (g + config_.weight_decay * user_logit_[u]);
        item_logit_[it] -= config_.learning_rate *
                           (g + config_.weight_decay * item_logit_[it]);
        bias_ -= 0.1 * config_.learning_rate * g;
      }
    }
  }
  return Status::OK();
}

double LogisticPropensity::Propensity(size_t user, size_t item) const {
  DTREC_CHECK_LT(user, user_logit_.size());
  DTREC_CHECK_LT(item, item_logit_.size());
  const double p = Sigmoid(user_logit_[user] + item_logit_[item] + bias_);
  DTREC_ASSERT_PROPENSITY(p);
  return p;
}

}  // namespace dtrec
