#ifndef DTREC_PROPENSITY_POPULARITY_PROPENSITY_H_
#define DTREC_PROPENSITY_POPULARITY_PROPENSITY_H_

#include <string>
#include <vector>

#include "propensity/propensity.h"

namespace dtrec {

/// Count-based MAR propensity under a user/item independence assumption:
///   P(o=1 | u, i) ≈ rate(u) · rate(i) / rate(overall)
/// where rate(u) = |O_u|/N, rate(i) = |O_i|/M. Zero-count users/items fall
/// back to Laplace-smoothed rates. A classic cheap propensity model and
/// one of the MR candidate set.
class PopularityPropensity : public PropensityModel {
 public:
  /// `smoothing` is the Laplace count added to every user/item.
  explicit PopularityPropensity(double smoothing = 1.0)
      : smoothing_(smoothing) {}

  Status Fit(const RatingDataset& dataset) override;
  double Propensity(size_t user, size_t item) const override;
  std::string name() const override { return "popularity"; }

 private:
  double smoothing_;
  std::vector<double> user_rate_;
  std::vector<double> item_rate_;
  double overall_rate_ = 0.0;
};

}  // namespace dtrec

#endif  // DTREC_PROPENSITY_POPULARITY_PROPENSITY_H_
