#include "propensity/popularity_propensity.h"

#include "util/logging.h"
#include "util/math_util.h"
#include "util/numeric_guard.h"

namespace dtrec {

Status PopularityPropensity::Fit(const RatingDataset& dataset) {
  DTREC_RETURN_IF_ERROR(dataset.Validate());
  if (smoothing_ < 0.0) {
    return Status::InvalidArgument("smoothing must be non-negative");
  }
  const size_t m = dataset.num_users();
  const size_t n = dataset.num_items();
  const std::vector<size_t> user_counts = dataset.UserCounts();
  const std::vector<size_t> item_counts = dataset.ItemCounts();

  user_rate_.assign(m, 0.0);
  item_rate_.assign(n, 0.0);
  for (size_t u = 0; u < m; ++u) {
    user_rate_[u] = (static_cast<double>(user_counts[u]) + smoothing_) /
                    (static_cast<double>(n) + 2.0 * smoothing_);
  }
  for (size_t i = 0; i < n; ++i) {
    item_rate_[i] = (static_cast<double>(item_counts[i]) + smoothing_) /
                    (static_cast<double>(m) + 2.0 * smoothing_);
  }
  overall_rate_ = Clamp(dataset.TrainDensity(), 1e-9, 1.0);
  return Status::OK();
}

double PopularityPropensity::Propensity(size_t user, size_t item) const {
  DTREC_CHECK_LT(user, user_rate_.size());
  DTREC_CHECK_LT(item, item_rate_.size());
  const double p =
      Clamp(user_rate_[user] * item_rate_[item] / overall_rate_, 1e-6, 1.0);
  DTREC_ASSERT_PROPENSITY(p);
  return p;
}

}  // namespace dtrec
